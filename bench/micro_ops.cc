/**
 * @file
 * google-benchmark microbenchmarks for the hot operations: predictor
 * lookup/update, sampler access, cache access, and a full simulated
 * instruction (supports the latency discussion of Sec. IV-E: the
 * sampling predictor does far less work per LLC access than the
 * metadata read-modify-write predictors).
 *
 * Results print to the console as usual and are also written to
 * BENCH_micro_ops.json (google-benchmark's JSON format), matching the
 * BENCH_*.json artifacts of the table/figure binaries.
 */

#include <benchmark/benchmark.h>

#include <fstream>
#include <iostream>
#include <memory>

#include "cache/cache.hh"
#include "cache/lru.hh"
#include "core/sdbp.hh"
#include "cpu/system.hh"
#include "predictor/counting.hh"
#include "predictor/reftrace.hh"
#include "sim/engine.hh"
#include "sim/runner.hh"
#include "sim/worker.hh"
#include "trace/spec_profiles.hh"
#include "util/rng.hh"
#include "util/simd.hh"

namespace
{

using namespace sdbp;

void
BM_SkewedTableLookup(benchmark::State &state)
{
    SkewedTable table;
    Rng rng(1);
    std::uint64_t sig = 0;
    for (auto _ : state) {
        sig = (sig + 0x9e37) & mask(15);
        benchmark::DoNotOptimize(table.predict(sig));
    }
}
BENCHMARK(BM_SkewedTableLookup);

void
BM_SdbpAccessUnsampledSet(benchmark::State &state)
{
    SamplingDeadBlockPredictor p;
    Addr addr = 0;
    for (auto _ : state) {
        addr += 64;
        benchmark::DoNotOptimize(
            p.onAccess(1, Access::atBlock(addr,
                                        0x400000 + (addr & 0xff))));
    }
}
BENCHMARK(BM_SdbpAccessUnsampledSet);

void
BM_SdbpAccessSampledSet(benchmark::State &state)
{
    SamplingDeadBlockPredictor p;
    Addr addr = 0;
    for (auto _ : state) {
        addr += 2048; // stay in sampled set 0
        benchmark::DoNotOptimize(
            p.onAccess(0, Access::atBlock(addr,
                                        0x400000 + (addr & 0xff))));
    }
}
BENCHMARK(BM_SdbpAccessSampledSet);

void
BM_RefTraceAccess(benchmark::State &state)
{
    RefTracePredictor p;
    Addr addr = 0;
    for (auto _ : state) {
        addr = (addr + 1) & 0xfff;
        p.onFill(0, Access::atBlock(addr, 0x400000));
        benchmark::DoNotOptimize(
            p.onAccess(0, Access::atBlock(addr, 0x400004)));
        p.onEvict(0, Access::atBlock(addr));
    }
}
BENCHMARK(BM_RefTraceAccess);

void
BM_CountingAccess(benchmark::State &state)
{
    CountingPredictor p;
    Addr addr = 0;
    for (auto _ : state) {
        addr = (addr + 1) & 0xfff;
        p.onFill(0, Access::atBlock(addr, 0x400000));
        benchmark::DoNotOptimize(
            p.onAccess(0, Access::atBlock(addr, 0x400000)));
        p.onEvict(0, Access::atBlock(addr));
    }
}
BENCHMARK(BM_CountingAccess);

void
BM_LruCacheAccess(benchmark::State &state)
{
    CacheConfig cfg;
    cfg.numSets = 2048;
    cfg.assoc = 16;
    Cache cache(cfg, std::make_unique<LruPolicy>(2048, 16));
    Rng rng(7);
    std::uint64_t now = 0;
    for (auto _ : state) {
        const Access a =
            Access::atBlock(rng.below(1 << 16), 0x400000);
        if (!cache.access(a, now))
            cache.fill(a, now);
        ++now;
    }
}
BENCHMARK(BM_LruCacheAccess);

void
simulatedInstruction(benchmark::State &state, bool force_virtual)
{
    HierarchyConfig hcfg;
    Engine eng = makeEngine(PolicyKind::Sampler, hcfg, CoreConfig{},
                            {}, force_virtual);
    SyntheticWorkload workload(specProfile("456.hmmer"));
    // Use run() in chunks so the benchmark measures steady state.
    std::vector<AccessGenerator *> gens = {&workload};
    for (auto _ : state)
        eng.system->run(gens, 0, 10000);
    state.SetItemsProcessed(state.iterations() * 10000);
}

/** The default (sealed fast-path) engine, as the runner uses it. */
void
BM_SimulatedInstruction(benchmark::State &state)
{
    simulatedInstruction(state, false);
}
BENCHMARK(BM_SimulatedInstruction)->Unit(benchmark::kMillisecond);

/**
 * The same sealed engine with the scan-kernel path pinned: /simd is
 * the AVX2 kernels (where available), /scalar forces the reference
 * scans — the in-process equivalent of SDBP_NO_SIMD=1.  Their delta
 * is the end-to-end worth of the vector set scan.
 */
void
simulatedInstructionSimd(benchmark::State &state, bool simd_on)
{
    const bool prev = simd::setEnabledForTest(simd_on);
    simulatedInstruction(state, false);
    simd::setEnabledForTest(prev);
}
BENCHMARK_CAPTURE(simulatedInstructionSimd, simd, true)
    ->Name("BM_SimulatedInstruction/simd")
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(simulatedInstructionSimd, scalar, false)
    ->Name("BM_SimulatedInstruction/scalar")
    ->Unit(benchmark::kMillisecond);

/** The type-erased reference stack (SDBP_NO_FASTPATH route). */
void
BM_SimulatedInstructionVirtual(benchmark::State &state)
{
    simulatedInstruction(state, true);
}
BENCHMARK(BM_SimulatedInstructionVirtual)
    ->Unit(benchmark::kMillisecond);

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    // Console output as usual, plus the machine-readable artifact —
    // injected via the standard --benchmark_out flags so an explicit
    // user-provided --benchmark_out still wins.
    std::vector<char *> args(argv, argv + argc);
    std::string out_flag = "--benchmark_out=BENCH_micro_ops.json";
    std::string fmt_flag = "--benchmark_out_format=json";
    bool user_out = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
            user_out = true;
    if (!user_out) {
        args.push_back(out_flag.data());
        args.push_back(fmt_flag.data());
    }
    int args_count = static_cast<int>(args.size());

    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count,
                                               args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    if (!user_out)
        std::cout << "[wrote BENCH_micro_ops.json]\n";
    benchmark::Shutdown();
    return 0;
}
