/**
 * @file
 * Table II: leakage and dynamic power of the predictor components,
 * via the analytical CACTI-substitute model (DESIGN.md §3).
 */

#include "bench/common.hh"
#include "core/sdbp.hh"
#include "power/model.hh"
#include "predictor/counting.hh"
#include "predictor/reftrace.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Table II: predictor leakage and dynamic power",
                  "Table II and Sec. IV-D");

    constexpr std::uint64_t llc_blocks = 32768;

    bench::JsonReport report("table2_power",
                             "Table II and Sec. IV-D");

    PowerModel model;
    const auto llc = model.estimate(PowerModel::baselineLlcGeometry());

    RefTracePredictor reftrace;
    CountingPredictor counting;
    SamplingDeadBlockPredictor sampler;

    struct Component
    {
        std::string predictor;
        SramGeometry structures;
        SramGeometry metadata;
    };

    auto component = [&](const DeadBlockPredictor &p,
                         std::uint64_t access_bits,
                         double update_activity) {
        Component c;
        c.predictor = p.name();
        c.structures = SramGeometry{
            .name = p.name() + " structures",
            .totalBits = p.storageBits(),
            .accessBits = access_bits,
            .activity = update_activity,
        };
        c.metadata = PowerModel::metadataGeometry(
            p.name() + " metadata", p.metadataBitsPerBlock(),
            llc_blocks);
        return c;
    };

    // reftrace: 2-bit read + 15-bit signature RMW on every access.
    // counting: 5-bit entry RMW.
    // sampler: three 2-bit counters read per prediction; sampler
    // tags written on 1.6% of accesses (32/2048 sets).
    const std::vector<Component> components = {
        component(reftrace, 2 + 2 * 15, 1.0),
        component(counting, 2 * 5, 1.0),
        component(sampler, 3 * 2, 32.0 / 2048.0),
    };

    TextTable t({"Component", "Leakage (W)", "Peak dynamic (W)",
                 "Effective dynamic (W)", "Leak % of LLC",
                 "Peak dyn % of LLC"});
    for (const auto &c : components) {
        const auto s = model.estimate(c.structures);
        const auto m = model.estimate(c.metadata);
        const double leak = s.leakageW + m.leakageW;
        const double peak = s.peakDynamicW + m.peakDynamicW;
        const double eff = s.effectiveDynamicW + m.effectiveDynamicW;
        t.row()
            .cell(c.predictor)
            .cell(leak, 4)
            .cell(peak, 4)
            .cell(eff, 4)
            .cell(formatPercent(leak / llc.leakageW, 1))
            .cell(formatPercent(peak / llc.peakDynamicW, 1));
    }
    t.print(std::cout);

    std::cout << "\nBaseline LLC: " << formatDouble(llc.peakDynamicW, 2)
              << " W dynamic, " << formatDouble(llc.leakageW, 3)
              << " W leakage (calibration anchors).\n"
              << "Paper reference points (Sec. IV-D): sampler uses "
                 "3.1% of LLC dynamic and 1.2% of leakage; counting "
                 "11% and 4.7%; reftrace 2.9% leakage.\n"
              << "The model reproduces the ordering sampler < "
                 "reftrace < counting on both axes.\n";

    report.addTable("predictor leakage and dynamic power", t);
    report.note("Paper: sampler 3.1% of LLC dynamic / 1.2% leakage; "
                "counting 11% / 4.7%; reftrace 2.9% leakage");
    return bench::finish(report);
}
