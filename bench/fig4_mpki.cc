/**
 * @file
 * Fig. 4: LLC misses of each technique normalized to the 2 MB LRU
 * baseline, per benchmark, plus the optimal policy.
 */

#include "bench/common.hh"
#include "opt/belady.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 4: normalized LLC misses (LRU default)",
                  "Fig. 4, Sec. VII-A1");

    RunConfig cfg = RunConfig::singleCore();
    RunConfig lru_cfg = cfg;
    lru_cfg.recordLlcTrace = true;

    bench::JsonReport report("fig4_mpki", "Fig. 4, Sec. VII-A1", cfg);

    const auto &policies = lruDefaultPolicies();
    const auto &subset = memoryIntensiveSubset();

    const auto baseline =
        bench::runGrid(report, subset, {PolicyKind::Lru}, lru_cfg);
    const auto grid = bench::runGrid(report, subset, policies, cfg);

    // The optimal replays are pure CPU work over the recorded LRU
    // traces; fan them out too.
    std::vector<OptimalResult> opt(subset.size());
    bench::timedParallelFor(report, subset.size(), [&](std::size_t b) {
        const RunResult &lru = baseline.at(b, 0);
        opt[b] = optimalMisses(lru.llcTrace, cfg.hierarchy.llc.numSets,
                               cfg.hierarchy.llc.assoc, true,
                               lru.llcTraceMeasureStart);
    });

    TextTable t({"Benchmark", "TDBP", "CDBP", "DIP", "RRIP", "Sampler",
                 "Optimal"});
    std::map<std::string, std::vector<double>> normalized;

    for (std::size_t b = 0; b < subset.size(); ++b) {
        const RunResult &lru = baseline.at(b, 0);
        auto &row = t.row().cell(sdbp::bench::shortName(subset[b]));
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult &r = grid.at(b, p);
            const double norm = lru.llcMisses == 0
                ? 1.0
                : static_cast<double>(r.llcMisses) /
                    static_cast<double>(lru.llcMisses);
            normalized[policyName(policies[p])].push_back(norm);
            row.cell(norm, 3);
        }
        const double onorm = lru.llcMisses == 0
            ? 1.0
            : static_cast<double>(opt[b].misses) /
                static_cast<double>(lru.llcMisses);
        normalized["Optimal"].push_back(onorm);
        row.cell(onorm, 3);
    }

    auto &mean_row = t.row().cell("amean");
    for (const char *name :
         {"TDBP", "CDBP", "DIP", "RRIP", "Sampler", "Optimal"})
        mean_row.cell(amean(normalized[name]), 3);
    t.print(std::cout);

    std::cout <<
        "\nPaper reference (amean normalized misses): TDBP 1.080, "
        "CDBP 0.954, DIP 0.939,\nRRIP 0.919, Sampler 0.883, "
        "Optimal 0.814.\n";

    report.addTable("normalized LLC misses (LRU default)", t);
    report.note("Paper amean normalized misses: TDBP 1.080, "
                "CDBP 0.954, DIP 0.939, RRIP 0.919, Sampler 0.883, "
                "Optimal 0.814");
    return bench::finish(report);
}
