/**
 * @file
 * Fig. 4: LLC misses of each technique normalized to the 2 MB LRU
 * baseline, per benchmark, plus the optimal policy.
 */

#include "bench/common.hh"
#include "opt/belady.hh"

using namespace sdbp;

int
main()
{
    bench::banner("Fig. 4: normalized LLC misses (LRU default)",
                  "Fig. 4, Sec. VII-A1");

    RunConfig cfg = RunConfig::singleCore();
    RunConfig lru_cfg = cfg;
    lru_cfg.recordLlcTrace = true;

    const auto &policies = lruDefaultPolicies();

    TextTable t({"Benchmark", "TDBP", "CDBP", "DIP", "RRIP", "Sampler",
                 "Optimal"});
    std::map<std::string, std::vector<double>> normalized;

    for (const auto &bench : memoryIntensiveSubset()) {
        const RunResult lru =
            runSingleCore(bench, PolicyKind::Lru, lru_cfg);
        auto &row = t.row().cell(sdbp::bench::shortName(bench));
        for (const auto kind : policies) {
            const RunResult r = runSingleCore(bench, kind, cfg);
            const double norm = lru.llcMisses == 0
                ? 1.0
                : static_cast<double>(r.llcMisses) /
                    static_cast<double>(lru.llcMisses);
            normalized[policyName(kind)].push_back(norm);
            row.cell(norm, 3);
        }
        const OptimalResult opt = optimalMisses(
            lru.llcTrace, cfg.hierarchy.llc.numSets,
            cfg.hierarchy.llc.assoc, true, lru.llcTraceMeasureStart);
        const double onorm = lru.llcMisses == 0
            ? 1.0
            : static_cast<double>(opt.misses) /
                static_cast<double>(lru.llcMisses);
        normalized["Optimal"].push_back(onorm);
        row.cell(onorm, 3);
    }

    auto &mean_row = t.row().cell("amean");
    for (const char *name :
         {"TDBP", "CDBP", "DIP", "RRIP", "Sampler", "Optimal"})
        mean_row.cell(amean(normalized[name]), 3);
    t.print(std::cout);

    std::cout <<
        "\nPaper reference (amean normalized misses): TDBP 1.080, "
        "CDBP 0.954, DIP 0.939,\nRRIP 0.919, Sampler 0.883, "
        "Optimal 0.814.\n";

    bench::JsonReport report("fig4_mpki", "Fig. 4, Sec. VII-A1", cfg);
    report.addTable("normalized LLC misses (LRU default)", t);
    report.note("Paper amean normalized misses: TDBP 1.080, "
                "CDBP 0.954, DIP 0.939, RRIP 0.919, Sampler 0.883, "
                "Optimal 0.814");
    report.write();
    bench::footer();
    return 0;
}
