/**
 * @file
 * Table III: per-benchmark characterization — LRU MPKI, optimal
 * (MIN + bypass) MPKI and LRU IPC for the 2 MB LLC, for all 29
 * benchmark profiles.  Benchmarks in the memory-intensive subset
 * (>= 1% miss reduction under optimal) are marked with '*'.
 */

#include <algorithm>

#include "bench/common.hh"
#include "opt/belady.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Table III: benchmark characterization",
                  "Table III, Sec. VI-A1");

    RunConfig cfg = RunConfig::singleCore();
    cfg.recordLlcTrace = true;

    bench::JsonReport report("table3_characterization",
                             "Table III, Sec. VI-A1", cfg);

    const auto &subset = memoryIntensiveSubset();
    const auto &all = allSpecBenchmarks();

    // Each task runs the LRU simulation and the MIN replay of its
    // recorded trace, then drops the (large) trace before storing.
    struct Characterization
    {
        RunResult lru;
        std::uint64_t opt_misses = 0;
    };
    std::vector<Characterization> rows(all.size());
    bench::timedParallelFor(report, all.size(), [&](std::size_t i) {
        RunResult lru = runSingleCore(all[i], PolicyKind::Lru, cfg);
        const OptimalResult opt = optimalMisses(
            lru.llcTrace, cfg.hierarchy.llc.numSets,
            cfg.hierarchy.llc.assoc, true, lru.llcTraceMeasureStart);
        rows[i].opt_misses = opt.misses;
        lru.llcTrace = {};
        rows[i].lru = std::move(lru);
    });

    TextTable t({"Benchmark", "MPKI (LRU)", "MPKI (MIN)", "IPC (LRU)",
                 "MIN gain", "subset"});
    for (std::size_t i = 0; i < all.size(); ++i) {
        const std::string &name = all[i];
        const RunResult &lru = rows[i].lru;
        report.addRun(name, "LRU", lru.wallSeconds);
        const double min_mpki = mpki(rows[i].opt_misses,
                                     lru.instructions);
        const double gain = lru.llcMisses == 0
            ? 0.0
            : 1.0 - static_cast<double>(rows[i].opt_misses) /
                  static_cast<double>(lru.llcMisses);
        const bool in_subset =
            std::find(subset.begin(), subset.end(), name) !=
            subset.end();
        t.row()
            .cell(bench::shortName(name))
            .cell(lru.mpki, 2)
            .cell(min_mpki, 2)
            .cell(lru.ipc, 2)
            .cell(formatPercent(gain, 1))
            .cell(in_subset ? "*" : "");
    }
    t.print(std::cout);
    std::cout << "\n'*' marks the 19-benchmark memory-intensive subset "
                 "used by Figs. 4-9.\n";

    report.addTable("benchmark characterization", t);
    report.note("'*' marks the 19-benchmark memory-intensive subset");
    return bench::finish(report);
}
