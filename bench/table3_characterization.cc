/**
 * @file
 * Table III: per-benchmark characterization — LRU MPKI, optimal
 * (MIN + bypass) MPKI and LRU IPC for the 2 MB LLC, for all 29
 * benchmark profiles.  Benchmarks in the memory-intensive subset
 * (>= 1% miss reduction under optimal) are marked with '*'.
 */

#include <algorithm>

#include "bench/common.hh"
#include "opt/belady.hh"

using namespace sdbp;

int
main()
{
    bench::banner("Table III: benchmark characterization",
                  "Table III, Sec. VI-A1");

    RunConfig cfg = RunConfig::singleCore();
    cfg.recordLlcTrace = true;

    const auto &subset = memoryIntensiveSubset();

    TextTable t({"Benchmark", "MPKI (LRU)", "MPKI (MIN)", "IPC (LRU)",
                 "MIN gain", "subset"});
    for (const auto &name : allSpecBenchmarks()) {
        const RunResult lru = runSingleCore(name, PolicyKind::Lru, cfg);
        const OptimalResult opt = optimalMisses(
            lru.llcTrace, cfg.hierarchy.llc.numSets,
            cfg.hierarchy.llc.assoc, true, lru.llcTraceMeasureStart);
        const double min_mpki =
            mpki(opt.misses, lru.instructions);
        const double gain = lru.llcMisses == 0
            ? 0.0
            : 1.0 - static_cast<double>(opt.misses) /
                  static_cast<double>(lru.llcMisses);
        const bool in_subset =
            std::find(subset.begin(), subset.end(), name) !=
            subset.end();
        t.row()
            .cell(bench::shortName(name))
            .cell(lru.mpki, 2)
            .cell(min_mpki, 2)
            .cell(lru.ipc, 2)
            .cell(formatPercent(gain, 1))
            .cell(in_subset ? "*" : "");
    }
    t.print(std::cout);
    std::cout << "\n'*' marks the 19-benchmark memory-intensive subset "
                 "used by Figs. 4-9.\n";

    bench::JsonReport report("table3_characterization",
                             "Table III, Sec. VI-A1", cfg);
    report.addTable("benchmark characterization", t);
    report.note("'*' marks the 19-benchmark memory-intensive subset");
    report.write();
    bench::footer();
    return 0;
}
