/**
 * @file
 * Fig. 9: coverage (fraction of LLC accesses predicted dead) and
 * false-positive rate of the reftrace, counting and sampling
 * predictors driving DBRB on a default LRU cache.
 */

#include "bench/common.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 9: predictor coverage and false positives",
                  "Fig. 9, Sec. VII-C");

    const RunConfig cfg = RunConfig::singleCore();
    const std::vector<PolicyKind> predictors = {
        PolicyKind::Tdbp, PolicyKind::Cdbp, PolicyKind::Sampler};

    bench::JsonReport report("fig9_accuracy", "Fig. 9, Sec. VII-C",
                             cfg);

    const auto grid =
        bench::runGrid(report, memoryIntensiveSubset(), predictors,
                       cfg);

    TextTable t({"Benchmark", "reftrace cov", "reftrace FP",
                 "counting cov", "counting FP", "sampler cov",
                 "sampler FP"});
    std::map<std::string, std::vector<double>> cov, fp;

    for (std::size_t b = 0; b < grid.benchmarks.size(); ++b) {
        auto &row =
            t.row().cell(sdbp::bench::shortName(grid.benchmarks[b]));
        for (std::size_t p = 0; p < predictors.size(); ++p) {
            const RunResult &r = grid.at(b, p);
            const double c = r.dbrb.coverage();
            const double f = r.dbrb.falsePositiveRate();
            cov[policyName(predictors[p])].push_back(c);
            fp[policyName(predictors[p])].push_back(f);
            row.cell(formatPercent(c, 1)).cell(formatPercent(f, 1));
        }
    }

    auto &mean_row = t.row().cell("amean");
    for (const auto kind : predictors) {
        mean_row.cell(formatPercent(amean(cov[policyName(kind)]), 1));
        mean_row.cell(formatPercent(amean(fp[policyName(kind)]), 1));
    }
    t.print(std::cout);

    std::cout <<
        "\nPaper reference (amean): reftrace 88% coverage / 19.9% FP; "
        "counting 67% / 7.2%;\nsampler 59% / 3.0%.  The sampler's "
        "low false-positive rate is what turns coverage into "
        "speedup.\n";

    report.addTable("predictor coverage and false positives", t);
    report.note("Paper amean: reftrace 88% cov / 19.9% FP; counting "
                "67% / 7.2%; sampler 59% / 3.0%");
    return bench::finish(report);
}
