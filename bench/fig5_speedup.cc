/**
 * @file
 * Fig. 5: per-benchmark speedup (IPC over the LRU baseline) of each
 * technique with a default LRU cache.
 */

#include "bench/common.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 5: speedup over LRU (LRU default)",
                  "Fig. 5, Sec. VII-A2");

    const RunConfig cfg = RunConfig::singleCore();
    const auto &policies = lruDefaultPolicies();

    bench::JsonReport report("fig5_speedup", "Fig. 5, Sec. VII-A2",
                             cfg);

    // One grid with the LRU baseline as column 0.
    std::vector<PolicyKind> cols = {PolicyKind::Lru};
    cols.insert(cols.end(), policies.begin(), policies.end());
    const auto grid =
        bench::runGrid(report, memoryIntensiveSubset(), cols, cfg);

    TextTable t({"Benchmark", "TDBP", "CDBP", "DIP", "RRIP",
                 "Sampler"});
    std::map<std::string, std::vector<double>> speedups;

    for (std::size_t b = 0; b < grid.benchmarks.size(); ++b) {
        const RunResult &lru = grid.at(b, 0);
        auto &row =
            t.row().cell(sdbp::bench::shortName(grid.benchmarks[b]));
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult &r = grid.at(b, p + 1);
            const double speedup =
                lru.ipc > 0 ? r.ipc / lru.ipc : 1.0;
            speedups[policyName(policies[p])].push_back(speedup);
            row.cell(speedup, 3);
        }
    }

    auto &mean_row = t.row().cell("gmean");
    for (const char *name : {"TDBP", "CDBP", "DIP", "RRIP", "Sampler"})
        mean_row.cell(gmean(speedups[name]), 3);
    t.print(std::cout);

    std::cout <<
        "\nPaper reference (gmean speedup): TDBP ~1.00, CDBP 1.023, "
        "DIP 1.031, RRIP 1.041,\nSampler 1.059.  The sampler should "
        "deliver the best geometric mean here.\n";

    report.addTable("speedup over LRU (LRU default)", t);
    report.note("Paper gmean speedup: TDBP ~1.00, CDBP 1.023, "
                "DIP 1.031, RRIP 1.041, Sampler 1.059");
    return bench::finish(report);
}
