/**
 * @file
 * Table I: storage overhead of the reftrace, counting and sampling
 * predictors for a 2 MB LLC.
 */

#include "bench/common.hh"
#include "core/sdbp.hh"
#include "power/storage.hh"
#include "predictor/counting.hh"
#include "predictor/reftrace.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Table I: predictor storage overhead",
                  "Table I, Sec. IV-A/B/C");

    constexpr std::uint64_t llc_blocks = 32768;
    constexpr std::uint64_t llc_bytes = 2ull * 1024 * 1024;

    bench::JsonReport report("table1_storage",
                             "Table I, Sec. IV-A/B/C");

    RefTracePredictor reftrace;
    CountingPredictor counting;
    SamplingDeadBlockPredictor sampler;

    struct Row
    {
        const DeadBlockPredictor *p;
        double paper_total_kb;
    };
    const std::vector<Row> rows = {
        {&reftrace, 72.0},
        {&counting, 108.0},
        {&sampler, 13.75},
    };

    TextTable t({"Predictor", "Predictor structures (KB)",
                 "Cache metadata (KB)", "Total (KB)",
                 "% of 2MB LLC", "Paper total (KB)"});
    for (const auto &row : rows) {
        const StorageBreakdown b = storageOf(*row.p, llc_blocks);
        t.row()
            .cell(b.predictor)
            .cell(b.predictorKB(), 3)
            .cell(b.metadataKB(), 1)
            .cell(b.totalKB(), 3)
            .cell(formatPercent(b.fractionOfCache(llc_bytes), 2))
            .cell(row.paper_total_kb, 2);
    }
    t.print(std::cout);

    std::cout <<
        "\nNote: the sampler tag array computes to 1.6875 KB from the\n"
        "paper's own per-entry fields (36 bits x 12 ways x 32 sets);\n"
        "the paper's Table I lists 6.75 KB for it (a 4x discrepancy,\n"
        "see EXPERIMENTS.md).  Either way the sampling predictor is\n"
        "well under 1% of LLC capacity while reftrace and counting\n"
        "cost 3.5% and 5.3%.\n";

    report.addTable("predictor storage overhead", t);
    report.note("Paper totals (KB): reftrace 72, counting 108, "
                "sampler 13.75 (see EXPERIMENTS.md on the sampler "
                "discrepancy)");
    return bench::finish(report);
}
