/**
 * @file
 * Interval-selection accuracy vs speedup: record a native trace per
 * workload profile, replay it in full for ground truth, then replay
 * only k-means-selected representative intervals and compare the
 * weighted MPKI/IPC estimates against the full-trace run.
 *
 * Methodology notes (see DESIGN.md §17): interval selection models
 * the SimPoint phase-sampling idea, so it is evaluated under LRU on
 * streaming-dominated profiles where per-interval warmup suffices.
 * Learning predictors (the sampler) need a training horizon far
 * longer than one interval, and reuse-heavy profiles are dominated
 * by per-representative cold caches — both are out of scope for the
 * estimator and excluded from the gate.
 *
 * Gate (skipped under --report-only): at least two profiles within
 * 5% MPKI error, and every profile at >= 10x instruction reduction.
 */

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <unistd.h>

#include "bench/common.hh"
#include "trace/spec_profiles.hh"
#include "trace/trace_file.hh"
#include "trace/workload.hh"

using namespace sdbp;

namespace
{

/** Record at least @p budget instructions of @p benchmark into a
 *  native trace at @p path; returns the instructions recorded.
 *  (TraceWriter counts records, not instructions, so loop on the
 *  running gap+1 sum.) */
std::uint64_t
recordProfile(const std::string &benchmark, std::uint64_t budget,
              const std::string &path)
{
    SyntheticWorkload gen(specProfile(benchmark));
    TraceWriter writer(path);
    std::uint64_t instructions = 0;
    Access a;
    while (instructions < budget) {
        a = gen.next();
        writer.append(a);
        instructions += std::uint64_t{a.gap} + 1;
    }
    return instructions;
}

/** One timed single-core run. */
RunResult
timedRun(bench::JsonReport &report, const std::string &run_label,
         const std::string &benchmark, const RunConfig &cfg)
{
    const auto start = std::chrono::steady_clock::now();
    RunResult res = runSingleCore(benchmark, PolicyKind::Lru, cfg);
    const double secs = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    report.addRun(run_label, "lru", secs, res.simulatedInstructions
                      ? res.simulatedInstructions
                      : res.instructions);
    return res;
}

double
relError(double estimate, double truth)
{
    if (truth == 0)
        return estimate == 0 ? 0 : 1;
    return std::fabs(estimate - truth) / truth;
}

} // namespace

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bool report_only = false;
    for (int i = 1; i < argc; ++i)
        if (std::string(argv[i]) == "--report-only")
            report_only = true;

    bench::banner("Interval selection: accuracy vs speedup",
                  "Sec. VI methodology (SimPoint-style sampling)");

    // Streaming-dominated profiles where one-interval warmup is
    // enough for LRU state to converge.
    const std::vector<std::string> profiles = {
        "462.libquantum", "433.milc", "470.lbm"};
    constexpr std::uint64_t kIntervalsPerTrace = 64;
    constexpr unsigned kClusters = 3;
    constexpr double kMpkiErrorGate = 0.05;
    constexpr double kReductionGate = 10.0;
    constexpr int kProfilesWithinGate = 2;

    const RunConfig base = RunConfig::singleCore();
    bench::JsonReport report("interval_selection",
                             "Sec. VI methodology", base);

    TextTable t({"Benchmark", "true MPKI", "est MPKI", "MPKI err",
                 "true IPC", "est IPC", "IPC err", "reduction"});

    int within_gate = 0;
    double min_reduction = 1e30;
    for (const auto &b : profiles) {
        char path[128];
        std::snprintf(path, sizeof path,
                      "/tmp/sdbp_interval_%ld_%s.trace",
                      static_cast<long>(::getpid()),
                      bench::shortName(b).c_str());

        // The recorded budget covers the full configured run plus
        // slack so batched replay never wraps mid-run.
        const std::uint64_t budget = base.warmupInstructions +
            base.measureInstructions +
            base.measureInstructions / 100 + 4096;
        const std::uint64_t total = recordProfile(b, budget, path);

        // Ground truth and estimate replay the same trace from a
        // cold cache (warmup 0), so both sides share the cold-start
        // transient and the gate isolates the sampling error.
        RunConfig truth_cfg = base;
        truth_cfg.trace.kind = TraceKind::Native;
        truth_cfg.trace.path = path;
        truth_cfg.warmupInstructions = 0;
        truth_cfg.measureInstructions = total;
        const RunResult truth =
            timedRun(report, b + "/full", b, truth_cfg);

        RunConfig est_cfg = truth_cfg;
        est_cfg.trace.intervalInstructions =
            std::max<std::uint64_t>(total / kIntervalsPerTrace, 1);
        est_cfg.trace.selectClusters = kClusters;
        const RunResult est =
            timedRun(report, b + "/selected", b, est_cfg);

        std::remove(path);

        const double mpki_err = relError(est.mpki, truth.mpki);
        const double ipc_err = relError(est.ipc, truth.ipc);
        const double reduction = est.simulatedInstructions
            ? static_cast<double>(est.traceInstructions) /
                static_cast<double>(est.simulatedInstructions)
            : 0;
        if (mpki_err <= kMpkiErrorGate)
            ++within_gate;
        min_reduction = std::min(min_reduction, reduction);

        t.row()
            .cell(bench::shortName(b))
            .cell(formatDouble(truth.mpki, 3))
            .cell(formatDouble(est.mpki, 3))
            .cell(formatPercent(mpki_err, 2))
            .cell(formatDouble(truth.ipc, 4))
            .cell(formatDouble(est.ipc, 4))
            .cell(formatPercent(ipc_err, 2))
            .cell(formatDouble(reduction, 1) + "x");
    }
    t.print(std::cout);

    std::cout << "\nEstimates replay " << kClusters
              << " representative intervals of "
              << kIntervalsPerTrace
              << " (weighted by cluster size); ground truth replays "
                 "the whole trace.\n";

    report.addTable("interval selection accuracy vs speedup", t);
    report.note("gate: >=" + std::to_string(kProfilesWithinGate) +
                " profiles within " +
                formatPercent(kMpkiErrorGate, 0) +
                " MPKI error, every profile >=" +
                formatDouble(kReductionGate, 0) + "x reduction");

    int rc = bench::finish(report);
    if (!report_only && rc == 0) {
        if (within_gate < kProfilesWithinGate) {
            std::cerr << "GATE FAILED: only " << within_gate
                      << " profile(s) within "
                      << formatPercent(kMpkiErrorGate, 0)
                      << " MPKI error (need "
                      << kProfilesWithinGate << ")\n";
            rc = 1;
        }
        if (min_reduction < kReductionGate) {
            std::cerr << "GATE FAILED: instruction reduction "
                      << formatDouble(min_reduction, 1) << "x below "
                      << formatDouble(kReductionGate, 0) << "x\n";
            rc = 1;
        }
    }
    return rc;
}
