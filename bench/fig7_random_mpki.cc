/**
 * @file
 * Fig. 7: LLC misses with a default random-replacement cache,
 * normalized to the same 2 MB LRU baseline as Fig. 4.
 */

#include "bench/common.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 7: normalized LLC misses (random default)",
                  "Fig. 7, Sec. VII-B1");

    const RunConfig cfg = RunConfig::singleCore();
    const auto &policies = randomDefaultPolicies();

    bench::JsonReport report("fig7_random_mpki",
                             "Fig. 7, Sec. VII-B1", cfg);

    std::vector<PolicyKind> cols = {PolicyKind::Lru};
    cols.insert(cols.end(), policies.begin(), policies.end());
    const auto grid =
        bench::runGrid(report, memoryIntensiveSubset(), cols, cfg);

    TextTable t({"Benchmark", "Random", "Random CDBP",
                 "Random Sampler"});
    std::map<std::string, std::vector<double>> normalized;

    for (std::size_t b = 0; b < grid.benchmarks.size(); ++b) {
        const RunResult &lru = grid.at(b, 0);
        auto &row =
            t.row().cell(sdbp::bench::shortName(grid.benchmarks[b]));
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult &r = grid.at(b, p + 1);
            const double norm = lru.llcMisses == 0
                ? 1.0
                : static_cast<double>(r.llcMisses) /
                    static_cast<double>(lru.llcMisses);
            normalized[policyName(policies[p])].push_back(norm);
            row.cell(norm, 3);
        }
    }

    auto &mean_row = t.row().cell("amean");
    for (const char *name : {"Random", "Random CDBP", "Random Sampler"})
        mean_row.cell(amean(normalized[name]), 3);
    t.print(std::cout);

    std::cout <<
        "\nPaper reference (amean, normalized to LRU): Random 1.025, "
        "Random CDBP ~1.00,\nRandom Sampler 0.925.  The random-default "
        "sampler needs only 1 bit of per-block metadata.\n";

    report.addTable("normalized LLC misses (random default)", t);
    report.note("Paper amean normalized misses: Random 1.025, "
                "Random CDBP ~1.00, Random Sampler 0.925");
    return bench::finish(report);
}
