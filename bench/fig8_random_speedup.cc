/**
 * @file
 * Fig. 8: speedup over the LRU baseline with a default
 * random-replacement cache.
 */

#include "bench/common.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 8: speedup over LRU (random default)",
                  "Fig. 8, Sec. VII-B2");

    const RunConfig cfg = RunConfig::singleCore();
    const auto &policies = randomDefaultPolicies();

    bench::JsonReport report("fig8_random_speedup",
                             "Fig. 8, Sec. VII-B2", cfg);

    std::vector<PolicyKind> cols = {PolicyKind::Lru};
    cols.insert(cols.end(), policies.begin(), policies.end());
    const auto grid =
        bench::runGrid(report, memoryIntensiveSubset(), cols, cfg);

    TextTable t({"Benchmark", "Random", "Random CDBP",
                 "Random Sampler"});
    std::map<std::string, std::vector<double>> speedups;

    for (std::size_t b = 0; b < grid.benchmarks.size(); ++b) {
        const RunResult &lru = grid.at(b, 0);
        auto &row =
            t.row().cell(sdbp::bench::shortName(grid.benchmarks[b]));
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const RunResult &r = grid.at(b, p + 1);
            const double speedup =
                lru.ipc > 0 ? r.ipc / lru.ipc : 1.0;
            speedups[policyName(policies[p])].push_back(speedup);
            row.cell(speedup, 3);
        }
    }

    auto &mean_row = t.row().cell("gmean");
    for (const char *name : {"Random", "Random CDBP", "Random Sampler"})
        mean_row.cell(gmean(speedups[name]), 3);
    t.print(std::cout);

    std::cout <<
        "\nPaper reference (gmean): Random 0.989, Random CDBP 1.001, "
        "Random Sampler 1.034.\n";

    report.addTable("speedup over LRU (random default)", t);
    report.note("Paper gmean: Random 0.989, Random CDBP 1.001, "
                "Random Sampler 1.034");
    return bench::finish(report);
}
