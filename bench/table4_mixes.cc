/**
 * @file
 * Table IV: the ten quad-core workload mixes, with a compact cache
 * sensitivity characterization of each (LLC MPKI of the mix under
 * LRU at several shared-cache sizes — the paper presents the same
 * information as per-mix sensitivity curves).
 */

#include "bench/common.hh"

using namespace sdbp;

int
main()
{
    bench::banner("Table IV: multi-core workload mixes",
                  "Table IV, Sec. VI-A2");

    RunConfig base = RunConfig::quadCore();
    // Sensitivity sweeps are expensive; a shorter budget per point
    // still shows the curve shape.
    base.measureInstructions =
        std::max<InstCount>(base.measureInstructions / 4, 250000);
    base.warmupInstructions =
        std::max<InstCount>(base.warmupInstructions / 4, 100000);

    const std::vector<std::uint32_t> llc_sets = {1024, 2048, 4096,
                                                 8192}; // 1..8 MB

    TextTable t({"Mix", "Benchmarks", "MPKI @1MB", "@2MB", "@4MB",
                 "@8MB"});
    for (const auto &mix : multicoreMixes()) {
        std::string benches;
        for (const auto &b : mix.benchmarks)
            benches += (benches.empty() ? "" : " ") +
                bench::shortName(b);
        auto &row = t.row().cell(mix.name).cell(benches);
        for (const auto sets : llc_sets) {
            RunConfig cfg = base;
            cfg.hierarchy.llc.numSets = sets;
            const auto r = runMulticore(mix, PolicyKind::Lru, cfg);
            row.cell(r.mpki, 2);
        }
    }
    t.print(std::cout);
    std::cout << "\nMPKI falls with shared-LLC size; the decline rate "
                 "is each mix's cache sensitivity curve.\n";

    bench::JsonReport report("table4_mixes", "Table IV, Sec. VI-A2",
                             base);
    report.addTable("multi-core workload mixes", t);
    report.write();
    bench::footer();
    return 0;
}
