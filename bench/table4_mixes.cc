/**
 * @file
 * Table IV: the ten quad-core workload mixes, with a compact cache
 * sensitivity characterization of each (LLC MPKI of the mix under
 * LRU at several shared-cache sizes — the paper presents the same
 * information as per-mix sensitivity curves).
 */

#include "bench/common.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Table IV: multi-core workload mixes",
                  "Table IV, Sec. VI-A2");

    RunConfig base = RunConfig::quadCore();
    // Sensitivity sweeps are expensive; a shorter budget per point
    // still shows the curve shape.
    base.measureInstructions =
        std::max<InstCount>(base.measureInstructions / 4, 250000);
    base.warmupInstructions =
        std::max<InstCount>(base.warmupInstructions / 4, 100000);

    const std::vector<std::uint32_t> llc_sets = {1024, 2048, 4096,
                                                 8192}; // 1..8 MB

    bench::JsonReport report("table4_mixes", "Table IV, Sec. VI-A2",
                             base);

    // Every (mix, LLC size) sensitivity point is independent;
    // flatten the whole matrix into one parallel sweep.
    const auto &mixes = multicoreMixes();
    std::vector<MulticoreRunResult> cells(mixes.size() *
                                          llc_sets.size());
    bench::timedParallelFor(report, cells.size(), [&](std::size_t i) {
        RunConfig cfg = base;
        cfg.hierarchy.llc.numSets = llc_sets[i % llc_sets.size()];
        cells[i] = runMulticore(mixes[i / llc_sets.size()],
                                PolicyKind::Lru, cfg);
    });

    TextTable t({"Mix", "Benchmarks", "MPKI @1MB", "@2MB", "@4MB",
                 "@8MB"});
    for (std::size_t m = 0; m < mixes.size(); ++m) {
        const auto &mix = mixes[m];
        std::string benches;
        for (const auto &b : mix.benchmarks)
            benches += (benches.empty() ? "" : " ") +
                bench::shortName(b);
        auto &row = t.row().cell(mix.name).cell(benches);
        for (std::size_t s = 0; s < llc_sets.size(); ++s) {
            const auto &r = cells[m * llc_sets.size() + s];
            report.addRun(mix.name + "@" +
                              std::to_string(llc_sets[s]) + "sets",
                          "LRU", r.wallSeconds);
            row.cell(r.mpki, 2);
        }
    }
    t.print(std::cout);
    std::cout << "\nMPKI falls with shared-LLC size; the decline rate "
                 "is each mix's cache sensitivity curve.\n";

    report.addTable("multi-core workload mixes", t);
    return bench::finish(report);
}
