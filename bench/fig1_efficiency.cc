/**
 * @file
 * Fig. 1 + Sec. I: cache efficiency (live-time ratio).  Runs
 * 456.hmmer with a 1 MB LRU LLC and with the sampling dead-block
 * policy, reports the efficiency of each, and reports the average
 * dead-time fraction across the memory-intensive subset under LRU
 * (the paper's "blocks are dead 86% of the time" claim uses a 2 MB
 * LLC).
 */

#include "bench/common.hh"

using namespace sdbp;

int
main()
{
    bench::banner("Fig. 1: cache efficiency (live-time ratio)",
                  "Fig. 1 and the Sec. I dead-time claim");

    // Part (a)/(b): 456.hmmer with a 1 MB LLC.
    RunConfig cfg = RunConfig::singleCore();
    cfg.hierarchy.llc.numSets = 1024; // 1 MB
    cfg.trackEfficiency = true;

    const auto lru = runSingleCore("456.hmmer", PolicyKind::Lru, cfg);
    const auto sampler =
        runSingleCore("456.hmmer", PolicyKind::Sampler, cfg);

    TextTable t({"Configuration", "Efficiency", "Paper"});
    t.row().cell("1MB LRU (a)")
        .cell(formatPercent(lru.llcEfficiency, 1))
        .cell("22%");
    t.row().cell("1MB sampler DBRB (b)")
        .cell(formatPercent(sampler.llcEfficiency, 1))
        .cell("87%");
    t.print(std::cout);

    // Sec. I claim: average dead fraction over the subset, 2 MB LRU.
    RunConfig cfg2 = RunConfig::singleCore();
    cfg2.trackEfficiency = true;
    std::vector<double> dead_fractions;
    for (const auto &bench : memoryIntensiveSubset()) {
        const auto r = runSingleCore(bench, PolicyKind::Lru, cfg2);
        dead_fractions.push_back(1.0 - r.llcEfficiency);
    }
    std::cout << "\nAverage dead-time fraction, 2MB LRU LLC, "
                 "19-benchmark subset: "
              << formatPercent(amean(dead_fractions), 1)
              << " (paper: 86.2%)\n";
    std::cout << "A PGM heat map like Fig. 1 can be produced with "
                 "examples/efficiency_visualizer.\n";

    bench::JsonReport report("fig1_efficiency",
                             "Fig. 1 and the Sec. I dead-time claim",
                             cfg);
    report.addTable("cache efficiency (live-time ratio)", t);
    report.note("Average dead-time fraction, 2MB LRU LLC, subset: " +
                formatPercent(amean(dead_fractions), 1) +
                " (paper: 86.2%)");
    report.write();
    bench::footer();
    return 0;
}
