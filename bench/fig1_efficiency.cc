/**
 * @file
 * Fig. 1 + Sec. I: cache efficiency (live-time ratio).  Runs
 * 456.hmmer with a 1 MB LRU LLC and with the sampling dead-block
 * policy, reports the efficiency of each, and reports the average
 * dead-time fraction across the memory-intensive subset under LRU
 * (the paper's "blocks are dead 86% of the time" claim uses a 2 MB
 * LLC).
 */

#include "bench/common.hh"

using namespace sdbp;

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 1: cache efficiency (live-time ratio)",
                  "Fig. 1 and the Sec. I dead-time claim");

    // Part (a)/(b): 456.hmmer with a 1 MB LLC.
    RunConfig cfg = RunConfig::singleCore();
    cfg.hierarchy.llc.numSets = 1024; // 1 MB
    cfg.trackEfficiency = true;

    bench::JsonReport report("fig1_efficiency",
                             "Fig. 1 and the Sec. I dead-time claim",
                             cfg);

    const auto hmmer = bench::runGrid(
        report, {"456.hmmer"},
        {PolicyKind::Lru, PolicyKind::Sampler}, cfg);
    const RunResult &lru = hmmer.at(0, 0);
    const RunResult &sampler = hmmer.at(0, 1);

    TextTable t({"Configuration", "Efficiency", "Paper"});
    t.row().cell("1MB LRU (a)")
        .cell(formatPercent(lru.llcEfficiency, 1))
        .cell("22%");
    t.row().cell("1MB sampler DBRB (b)")
        .cell(formatPercent(sampler.llcEfficiency, 1))
        .cell("87%");
    t.print(std::cout);

    // Sec. I claim: average dead fraction over the subset, 2 MB LRU.
    RunConfig cfg2 = RunConfig::singleCore();
    cfg2.trackEfficiency = true;
    const auto subset = bench::runGrid(report, memoryIntensiveSubset(),
                                       {PolicyKind::Lru}, cfg2);
    std::vector<double> dead_fractions;
    for (std::size_t b = 0; b < subset.benchmarks.size(); ++b)
        dead_fractions.push_back(1.0 - subset.at(b, 0).llcEfficiency);
    std::cout << "\nAverage dead-time fraction, 2MB LRU LLC, "
                 "19-benchmark subset: "
              << formatPercent(amean(dead_fractions), 1)
              << " (paper: 86.2%)\n";
    std::cout << "A PGM heat map like Fig. 1 can be produced with "
                 "examples/efficiency_visualizer.\n";

    report.addTable("cache efficiency (live-time ratio)", t);
    report.note("Average dead-time fraction, 2MB LRU LLC, subset: " +
                formatPercent(amean(dead_fractions), 1) +
                " (paper: 86.2%)");
    return bench::finish(report);
}
