/**
 * @file
 * Fig. 11 (extension): fault tolerance of the sampling predictor.
 *
 * Sweeps the soft-error injection rate over the predictor's SRAM
 * surface (sampler tags/LRU stacks and the skewed counter banks,
 * DESIGN.md §11) and reports the MPKI/IPC degradation curve of the
 * Sampler policy against the fault-free LRU baseline.  Dead-block
 * predictions are hints, so faults can only erode the benefit of the
 * predictor — every run re-audits the structural invariants and the
 * hierarchy's architectural state stays correct at any rate.
 */

#include "bench/common.hh"

using namespace sdbp;

namespace
{

/** Injection rates swept, in faults per million consultations. */
const std::vector<std::uint64_t> kRates = {0, 10, 100, 1000, 10000};

std::string
rateLabel(std::uint64_t rate)
{
    return std::to_string(rate) + "/M";
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner(
        "Fig. 11: Sampler MPKI/IPC vs predictor soft-error rate",
        "extension of Sec. VII; fault model in DESIGN.md \xC2\xA7"
        "11");

    RunConfig cfg = RunConfig::singleCore();
    bench::JsonReport report("fig11_fault_tolerance",
                             "extension; DESIGN.md \xC2\xA7"
                             "11",
                             cfg);

    const auto &subset = memoryIntensiveSubset();

    // Fault-free LRU reference: where the Sampler curve converges if
    // faults destroy every useful prediction.
    const auto lru =
        bench::runGrid(report, subset, {PolicyKind::Lru}, cfg);

    // One grid per injection rate; each checkpoints independently.
    std::vector<sweep::Grid> grids;
    for (const std::uint64_t rate : kRates) {
        RunConfig fault_cfg = cfg;
        fault_cfg.policy.dbrb.fault.faultsPerMillion = rate;
        grids.push_back(bench::runGrid(report, subset,
                                       {PolicyKind::Sampler},
                                       fault_cfg));
    }

    std::vector<std::string> headers = {"Benchmark", "LRU"};
    for (const std::uint64_t rate : kRates)
        headers.push_back("S@" + rateLabel(rate));

    TextTable mpki_t(headers);
    TextTable ipc_t(headers);
    std::map<std::string, std::vector<double>> mpki_cols;
    std::map<std::string, std::vector<double>> ipc_cols;

    for (std::size_t b = 0; b < subset.size(); ++b) {
        auto &mrow =
            mpki_t.row().cell(bench::shortName(subset[b]));
        auto &irow = ipc_t.row().cell(bench::shortName(subset[b]));
        const RunResult &base = lru.at(b, 0);
        mrow.cell(base.mpki, 3);
        irow.cell(base.ipc, 3);
        mpki_cols["LRU"].push_back(base.mpki);
        ipc_cols["LRU"].push_back(base.ipc);
        for (std::size_t ri = 0; ri < kRates.size(); ++ri) {
            const RunResult &r = grids[ri].at(b, 0);
            mrow.cell(r.mpki, 3);
            irow.cell(r.ipc, 3);
            mpki_cols[rateLabel(kRates[ri])].push_back(r.mpki);
            ipc_cols[rateLabel(kRates[ri])].push_back(r.ipc);
        }
    }

    auto &mmean = mpki_t.row().cell("amean");
    auto &imean = ipc_t.row().cell("amean");
    mmean.cell(amean(mpki_cols["LRU"]), 3);
    imean.cell(amean(ipc_cols["LRU"]), 3);
    for (const std::uint64_t rate : kRates) {
        mmean.cell(amean(mpki_cols[rateLabel(rate)]), 3);
        imean.cell(amean(ipc_cols[rateLabel(rate)]), 3);
    }

    std::cout << "\nLLC MPKI vs fault rate:\n";
    mpki_t.print(std::cout);
    std::cout << "\nIPC vs fault rate:\n";
    ipc_t.print(std::cout);

    // Fault accounting: injected flips against the configured rate.
    // The injector draws once per predictor consultation, so the
    // observed rate converges on the configured one.
    TextTable acct({"Rate", "Consultations", "Faults injected",
                    "Observed/M"});
    for (std::size_t ri = 0; ri < kRates.size(); ++ri) {
        std::uint64_t consultations = 0;
        std::uint64_t injected = 0;
        for (std::size_t b = 0; b < subset.size(); ++b) {
            const RunResult &r = grids[ri].at(b, 0);
            consultations += r.dbrb.predictions;
            injected += r.faultsInjected;
        }
        acct.row()
            .cell(rateLabel(kRates[ri]))
            .cell(std::to_string(consultations))
            .cell(std::to_string(injected))
            .cell(consultations == 0
                      ? 0.0
                      : 1e6 * static_cast<double>(injected) /
                          static_cast<double>(consultations),
                  1);
    }
    std::cout << "\nFault accounting:\n";
    acct.print(std::cout);

    std::cout
        << "\nPredictions are hints: faults degrade MPKI/IPC toward "
           "the LRU baseline\nbut never corrupt architectural state "
           "(every run re-audits invariants).\n";

    report.addTable("LLC MPKI vs fault rate", mpki_t);
    report.addTable("IPC vs fault rate", ipc_t);
    report.addTable("fault accounting", acct);
    report.note("Expectation: Sampler amean MPKI at 0/M beats LRU; "
                "rising fault rates erode the gap toward the LRU "
                "baseline while all invariant audits pass.");
    return bench::finish(report);
}
