/**
 * @file
 * Fig. 6: contribution of the sampling predictor's components —
 * every feasible combination of {sampler, 12-way sampler, skewed
 * 3-table predictor} on top of dead-block replacement and bypass
 * (DBRB), as geometric-mean speedup over the LRU baseline.
 *
 * Extended rows additionally ablate the design choices DESIGN.md §6
 * calls out: learn-from-own-evictions, bypass, and the confidence
 * threshold.
 */

#include "bench/common.hh"

using namespace sdbp;

namespace
{

struct Variant
{
    std::string name;
    PolicyOptions opts;
};

double
gmeanSpeedup(bench::JsonReport &report, const Variant &v,
             const RunConfig &base,
             const std::map<std::string, double> &lru_ipc)
{
    RunConfig cfg = base;
    cfg.policy = v.opts;
    const auto grid = bench::runGrid(report, memoryIntensiveSubset(),
                                     {PolicyKind::Sampler}, cfg);
    std::vector<double> speedups;
    for (std::size_t b = 0; b < grid.benchmarks.size(); ++b)
        speedups.push_back(grid.at(b, 0).ipc /
                           lru_ipc.at(grid.benchmarks[b]));
    return gmean(speedups);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner("Fig. 6: component contribution ablation",
                  "Fig. 6, Sec. VII-A4 (+ DESIGN.md §6 extras)");

    const RunConfig cfg = RunConfig::singleCore();
    const std::uint32_t llc_sets = cfg.hierarchy.llc.numSets;

    bench::JsonReport report("fig6_ablation", "Fig. 6, Sec. VII-A4",
                             cfg);

    const auto lru_grid = bench::runGrid(
        report, memoryIntensiveSubset(), {PolicyKind::Lru}, cfg);
    std::map<std::string, double> lru_ipc;
    for (std::size_t b = 0; b < lru_grid.benchmarks.size(); ++b)
        lru_ipc[lru_grid.benchmarks[b]] = lru_grid.at(b, 0).ipc;

    auto variant = [&](std::string name, bool use_sampler,
                       bool skewed, std::uint32_t sampler_assoc) {
        Variant v;
        v.name = std::move(name);
        SdbpConfig s = skewed ? SdbpConfig::paperDefault(llc_sets)
                              : SdbpConfig::singleTable(llc_sets);
        s.useSampler = use_sampler;
        s.sampler.assoc = sampler_assoc;
        v.opts.sdbp = s;
        return v;
    };

    std::vector<Variant> variants = {
        variant("DBRB alone (PC-only, 1 table)", false, false, 16),
        variant("DBRB + 3 tables", false, true, 16),
        variant("DBRB + sampler (16-way, 1 table)", true, false, 16),
        variant("DBRB + sampler + 3 tables", true, true, 16),
        variant("DBRB + sampler + 12-way", true, false, 12),
        variant("DBRB + sampler + 3 tables + 12-way (full)", true,
                true, 12),
    };

    // Extended ablations.
    {
        Variant v = variant("full, no learn-from-own-evictions", true,
                            true, 12);
        v.opts.sdbp->sampler.learnFromOwnEvictions = false;
        variants.push_back(v);
    }
    {
        Variant v = variant("full, bypass disabled", true, true, 12);
        v.opts.dbrb.enableBypass = false;
        variants.push_back(v);
    }
    {
        Variant v = variant("full, replacement disabled (bypass only)",
                            true, true, 12);
        v.opts.dbrb.enableDeadReplacement = false;
        variants.push_back(v);
    }
    for (unsigned threshold : {5, 7, 9}) {
        Variant v = variant("full, threshold " +
                                std::to_string(threshold),
                            true, true, 12);
        v.opts.sdbp->table.threshold = threshold;
        variants.push_back(v);
    }

    TextTable t({"Variant", "gmean speedup"});
    for (const auto &v : variants)
        t.row().cell(v.name).cell(
            gmeanSpeedup(report, v, cfg, lru_ipc), 3);

    // Extension (paper Sec. VIII future work): a counting predictor
    // trained through a decoupled sampler instead of by evictions.
    {
        const auto grid =
            bench::runGrid(report, memoryIntensiveSubset(),
                           {PolicyKind::SamplingCounting}, cfg);
        std::vector<double> speedups;
        for (std::size_t b = 0; b < grid.benchmarks.size(); ++b)
            speedups.push_back(grid.at(b, 0).ipc /
                               lru_ipc.at(grid.benchmarks[b]));
        t.row()
            .cell("extension: sampling counting predictor")
            .cell(gmean(speedups), 3);
    }
    t.print(std::cout);

    std::cout <<
        "\nPaper reference: DBRB alone 1.034, +3 tables 1.023, "
        "+sampler 1.038,\n+sampler+3 tables 1.040, +sampler+12-way "
        "1.056, full 1.059.\n";

    report.addTable("component contribution ablation", t);
    report.note("Paper: DBRB alone 1.034, +3 tables 1.023, +sampler "
                "1.038, +sampler+3 tables 1.040, +sampler+12-way "
                "1.056, full 1.059");
    return bench::finish(report);
}
