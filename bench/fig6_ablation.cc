/**
 * @file
 * Fig. 6: contribution of the sampling predictor's components —
 * every feasible combination of {sampler, 12-way sampler, skewed
 * 3-table predictor} on top of dead-block replacement and bypass
 * (DBRB), as geometric-mean speedup over the LRU baseline.
 *
 * Extended rows additionally ablate the design choices DESIGN.md §6
 * calls out: learn-from-own-evictions, bypass, and the confidence
 * threshold.
 */

#include "bench/common.hh"

using namespace sdbp;

namespace
{

struct Variant
{
    std::string name;
    PolicyOptions opts;
};

double
gmeanSpeedup(const Variant &v, const RunConfig &base,
             const std::map<std::string, double> &lru_ipc)
{
    RunConfig cfg = base;
    cfg.policy = v.opts;
    std::vector<double> speedups;
    for (const auto &bench : memoryIntensiveSubset()) {
        const RunResult r =
            runSingleCore(bench, PolicyKind::Sampler, cfg);
        speedups.push_back(r.ipc / lru_ipc.at(bench));
    }
    return gmean(speedups);
}

} // anonymous namespace

int
main()
{
    bench::banner("Fig. 6: component contribution ablation",
                  "Fig. 6, Sec. VII-A4 (+ DESIGN.md §6 extras)");

    const RunConfig cfg = RunConfig::singleCore();
    const std::uint32_t llc_sets = cfg.hierarchy.llc.numSets;

    std::map<std::string, double> lru_ipc;
    for (const auto &bench : memoryIntensiveSubset())
        lru_ipc[bench] =
            runSingleCore(bench, PolicyKind::Lru, cfg).ipc;

    auto variant = [&](std::string name, bool use_sampler,
                       bool skewed, std::uint32_t sampler_assoc) {
        Variant v;
        v.name = std::move(name);
        SdbpConfig s = skewed ? SdbpConfig::paperDefault(llc_sets)
                              : SdbpConfig::singleTable(llc_sets);
        s.useSampler = use_sampler;
        s.sampler.assoc = sampler_assoc;
        v.opts.sdbp = s;
        return v;
    };

    std::vector<Variant> variants = {
        variant("DBRB alone (PC-only, 1 table)", false, false, 16),
        variant("DBRB + 3 tables", false, true, 16),
        variant("DBRB + sampler (16-way, 1 table)", true, false, 16),
        variant("DBRB + sampler + 3 tables", true, true, 16),
        variant("DBRB + sampler + 12-way", true, false, 12),
        variant("DBRB + sampler + 3 tables + 12-way (full)", true,
                true, 12),
    };

    // Extended ablations.
    {
        Variant v = variant("full, no learn-from-own-evictions", true,
                            true, 12);
        v.opts.sdbp->sampler.learnFromOwnEvictions = false;
        variants.push_back(v);
    }
    {
        Variant v = variant("full, bypass disabled", true, true, 12);
        v.opts.dbrb.enableBypass = false;
        variants.push_back(v);
    }
    {
        Variant v = variant("full, replacement disabled (bypass only)",
                            true, true, 12);
        v.opts.dbrb.enableDeadReplacement = false;
        variants.push_back(v);
    }
    for (unsigned threshold : {5, 7, 9}) {
        Variant v = variant("full, threshold " +
                                std::to_string(threshold),
                            true, true, 12);
        v.opts.sdbp->table.threshold = threshold;
        variants.push_back(v);
    }

    TextTable t({"Variant", "gmean speedup"});
    for (const auto &v : variants)
        t.row().cell(v.name).cell(gmeanSpeedup(v, cfg, lru_ipc), 3);

    // Extension (paper Sec. VIII future work): a counting predictor
    // trained through a decoupled sampler instead of by evictions.
    {
        std::vector<double> speedups;
        for (const auto &bench : memoryIntensiveSubset()) {
            const RunResult r = runSingleCore(
                bench, PolicyKind::SamplingCounting, cfg);
            speedups.push_back(r.ipc / lru_ipc.at(bench));
        }
        t.row()
            .cell("extension: sampling counting predictor")
            .cell(gmean(speedups), 3);
    }
    t.print(std::cout);

    std::cout <<
        "\nPaper reference: DBRB alone 1.034, +3 tables 1.023, "
        "+sampler 1.038,\n+sampler+3 tables 1.040, +sampler+12-way "
        "1.056, full 1.059.\n";

    bench::JsonReport report("fig6_ablation",
                             "Fig. 6, Sec. VII-A4", cfg);
    report.addTable("component contribution ablation", t);
    report.note("Paper: DBRB alone 1.034, +3 tables 1.023, +sampler "
                "1.038, +sampler+3 tables 1.040, +sampler+12-way "
                "1.056, full 1.059");
    report.write();
    bench::footer();
    return 0;
}
