/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary prints the rows of one table or figure of the paper.
 * Instruction counts default to 2 M warm-up + 8 M measured per run
 * and scale via SDBP_INSTRUCTIONS / SDBP_WARMUP toward the paper's
 * 1 B-instruction SimPoints.
 */

#ifndef SDBP_BENCH_COMMON_HH
#define SDBP_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace sdbp::bench
{

/** Strip the numeric SPEC prefix for compact rows ("456.hmmer"). */
inline std::string
shortName(const std::string &benchmark)
{
    return benchmark;
}

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==========================================================\n"
              << title << "\n"
              << "(reproduces " << paper_ref << ")\n"
              << "==========================================================\n";
}

inline void
footer()
{
    std::cout << std::endl;
}

/**
 * Run the 19-benchmark subset under one policy; returns
 * benchmark -> result.
 */
inline std::map<std::string, RunResult>
runSubset(PolicyKind kind, const RunConfig &cfg)
{
    std::map<std::string, RunResult> out;
    for (const auto &bench : memoryIntensiveSubset())
        out[bench] = runSingleCore(bench, kind, cfg);
    return out;
}

} // namespace sdbp::bench

#endif // SDBP_BENCH_COMMON_HH
