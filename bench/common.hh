/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary prints the rows of one table or figure of the paper.
 * Instruction counts default to 2 M warm-up + 8 M measured per run
 * and scale via SDBP_INSTRUCTIONS / SDBP_WARMUP toward the paper's
 * 1 B-instruction SimPoints.
 */

#ifndef SDBP_BENCH_COMMON_HH
#define SDBP_BENCH_COMMON_HH

#include <cctype>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "obs/json.hh"
#include "sim/runner.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace sdbp::bench
{

/** Strip the numeric SPEC prefix for compact rows:
 *  "456.hmmer" -> "hmmer".  Names without the prefix pass through. */
inline std::string
shortName(const std::string &benchmark)
{
    const auto dot = benchmark.find('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 >= benchmark.size())
        return benchmark;
    for (std::size_t i = 0; i < dot; ++i)
        if (!std::isdigit(static_cast<unsigned char>(benchmark[i])))
            return benchmark;
    return benchmark.substr(dot + 1);
}

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==========================================================\n"
              << title << "\n"
              << "(reproduces " << paper_ref << ")\n"
              << "==========================================================\n";
}

inline void
footer()
{
    std::cout << std::endl;
}

/**
 * Run the 19-benchmark subset under one policy; returns
 * benchmark -> result.
 */
inline std::map<std::string, RunResult>
runSubset(PolicyKind kind, const RunConfig &cfg)
{
    std::map<std::string, RunResult> out;
    for (const auto &bench : memoryIntensiveSubset())
        out[bench] = runSingleCore(bench, kind, cfg);
    return out;
}

/**
 * Machine-readable companion of a bench binary's printed tables.
 * Each binary collects its TextTables here and calls write(), which
 * produces BENCH_<name>.json in the working directory — the same
 * numbers the terminal shows, parseable by tools/plots/CI.
 */
class JsonReport
{
  public:
    JsonReport(std::string name, std::string paper_ref,
               const RunConfig &cfg)
        : name_(std::move(name)), paperRef_(std::move(paper_ref)),
          warmup_(cfg.warmupInstructions),
          measure_(cfg.measureInstructions)
    {
    }

    /** For binaries that run no simulation (storage/power tables). */
    JsonReport(std::string name, std::string paper_ref)
        : name_(std::move(name)), paperRef_(std::move(paper_ref)),
          warmup_(0), measure_(0)
    {
    }

    /** Record one printed table under @p title. */
    void
    addTable(const std::string &title, const TextTable &t)
    {
        tables_.emplace_back(title, &t);
    }

    /** Free-form note (paper reference values etc.). */
    void note(const std::string &text) { notes_.push_back(text); }

    /** Write BENCH_<name>.json; reports failure on stderr. */
    bool
    write() const
    {
        obs::JsonValue root = obs::JsonValue::object();
        root.set("schema", obs::JsonValue("sdbp.bench_report/1"));
        root.set("bench", obs::JsonValue(name_));
        root.set("paper_ref", obs::JsonValue(paperRef_));
        obs::JsonValue config = obs::JsonValue::object();
        config.set("warmup_instructions", obs::JsonValue(warmup_));
        config.set("measure_instructions", obs::JsonValue(measure_));
        root.set("config", std::move(config));

        obs::JsonValue tables = obs::JsonValue::array();
        for (const auto &[title, table] : tables_) {
            obs::JsonValue jt = obs::JsonValue::object();
            jt.set("title", obs::JsonValue(title));
            obs::JsonValue headers = obs::JsonValue::array();
            for (const auto &h : table->headers())
                headers.push(obs::JsonValue(h));
            jt.set("headers", std::move(headers));
            obs::JsonValue rows = obs::JsonValue::array();
            for (const auto &row : table->rows()) {
                obs::JsonValue jr = obs::JsonValue::array();
                for (const auto &cell : row)
                    jr.push(obs::JsonValue(cell));
                rows.push(std::move(jr));
            }
            jt.set("rows", std::move(rows));
            tables.push(std::move(jt));
        }
        root.set("tables", std::move(tables));

        obs::JsonValue notes = obs::JsonValue::array();
        for (const auto &n : notes_)
            notes.push(obs::JsonValue(n));
        root.set("notes", std::move(notes));

        const std::string path = "BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::cerr << "cannot write " << path << "\n";
            return false;
        }
        const std::string text = root.dump() + "\n";
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::cout << "[wrote " << path << "]\n";
        return true;
    }

  private:
    std::string name_;
    std::string paperRef_;
    InstCount warmup_;
    InstCount measure_;
    /** (title, table); tables must outlive the report. */
    std::vector<std::pair<std::string, const TextTable *>> tables_;
    std::vector<std::string> notes_;
};

} // namespace sdbp::bench

#endif // SDBP_BENCH_COMMON_HH
