/**
 * @file
 * Shared helpers for the per-table/per-figure benchmark binaries.
 *
 * Every binary prints the rows of one table or figure of the paper.
 * Instruction counts default to 2 M warm-up + 8 M measured per run
 * and scale via SDBP_INSTRUCTIONS / SDBP_WARMUP toward the paper's
 * 1 B-instruction SimPoints.
 */

#ifndef SDBP_BENCH_COMMON_HH
#define SDBP_BENCH_COMMON_HH

#include <cctype>
#include <chrono>
#include <cstdio>
#include <functional>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.hh"
#include "obs/span_tracer.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/worker.hh"
#include "util/file.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace sdbp::bench
{

/** Strip the numeric SPEC prefix for compact rows:
 *  "456.hmmer" -> "hmmer".  Names without the prefix pass through. */
inline std::string
shortName(const std::string &benchmark)
{
    const auto dot = benchmark.find('.');
    if (dot == std::string::npos || dot == 0 ||
        dot + 1 >= benchmark.size())
        return benchmark;
    for (std::size_t i = 0; i < dot; ++i)
        if (!std::isdigit(static_cast<unsigned char>(benchmark[i])))
            return benchmark;
    return benchmark.substr(dot + 1);
}

inline void
banner(const std::string &title, const std::string &paper_ref)
{
    std::cout << "==========================================================\n"
              << title << "\n"
              << "(reproduces " << paper_ref << ")\n"
              << "==========================================================\n";
}

inline void
footer()
{
    std::cout << std::endl;
}

/**
 * Run the 19-benchmark subset under one policy (fanned across
 * SDBP_JOBS workers); returns benchmark -> result.
 */
inline std::map<std::string, RunResult>
runSubset(PolicyKind kind, const RunConfig &cfg)
{
    const sweep::Grid g =
        sweep::runGrid(memoryIntensiveSubset(), {kind}, cfg);
    std::map<std::string, RunResult> out;
    for (std::size_t b = 0; b < g.benchmarks.size(); ++b)
        out[g.benchmarks[b]] = g.at(b, 0);
    return out;
}

/**
 * Machine-readable companion of a bench binary's printed tables.
 * Each binary collects its TextTables here and calls write(), which
 * produces BENCH_<name>.json in the working directory — the same
 * numbers the terminal shows, parseable by tools/plots/CI.
 */
class JsonReport
{
  public:
    JsonReport(std::string name, std::string paper_ref,
               const RunConfig &cfg)
        : name_(std::move(name)), paperRef_(std::move(paper_ref)),
          warmup_(cfg.warmupInstructions),
          measure_(cfg.measureInstructions)
    {
    }

    /** For binaries that run no simulation (storage/power tables). */
    JsonReport(std::string name, std::string paper_ref)
        : name_(std::move(name)), paperRef_(std::move(paper_ref)),
          warmup_(0), measure_(0)
    {
    }

    /** Record one printed table under @p title. */
    void
    addTable(const std::string &title, const TextTable &t)
    {
        tables_.emplace_back(title, &t);
    }

    /** Free-form note (paper reference values etc.). */
    void note(const std::string &text) { notes_.push_back(text); }

    /** Record one simulated run's wall clock (and, when known, its
     *  instruction count + host counters) for the timing block. */
    void
    addRun(const std::string &run, const std::string &policy,
           double seconds, std::uint64_t instructions = 0,
           const util::PerfCounters::Sample &host_perf = {})
    {
        runs_.push_back({run, policy, seconds, instructions,
                         host_perf});
        runSeconds_ += seconds;
    }

    /** Account sweep wall clock not covered by addGrid. */
    void addSweepSeconds(double seconds) { sweepSeconds_ += seconds; }

    /** Fold a finished sweep into the timing block and collect its
     *  cell failures for the sweep block / exit code. */
    void
    addGrid(const sweep::Grid &g)
    {
        jobs_ = g.jobs;
        sweepSeconds_ += g.wallSeconds;
        errors_.insert(errors_.end(), g.errors.begin(),
                       g.errors.end());
        skipped_ += g.skipped;
        resumed_ += g.resumed;
        for (std::size_t b = 0; b < g.benchmarks.size(); ++b)
            for (std::size_t p = 0; p < g.policies.size(); ++p)
                addRun(g.benchmarks[b], policyName(g.policies[p]),
                       g.at(b, p).wallSeconds,
                       g.at(b, p).instructions, g.at(b, p).hostPerf);
    }

    void
    addGrid(const sweep::MixGrid &g)
    {
        jobs_ = g.jobs;
        sweepSeconds_ += g.wallSeconds;
        errors_.insert(errors_.end(), g.errors.begin(),
                       g.errors.end());
        skipped_ += g.skipped;
        resumed_ += g.resumed;
        for (std::size_t m = 0; m < g.mixes.size(); ++m)
            for (std::size_t p = 0; p < g.policies.size(); ++p)
                addRun(g.mixes[m].name, policyName(g.policies[p]),
                       g.at(m, p).wallSeconds,
                       g.at(m, p).totalInstructions,
                       g.at(m, p).hostPerf);
    }

    /**
     * Checkpoint path for the next sweep this report will run:
     * BENCH_<name>.manifest.json for the first grid, then
     * BENCH_<name>.grid2.manifest.json and so on — each grid of a
     * multi-grid bench resumes independently.
     */
    std::string
    nextManifestPath()
    {
        ++gridCount_;
        if (gridCount_ == 1)
            return "BENCH_" + name_ + ".manifest.json";
        return "BENCH_" + name_ + ".grid" +
            std::to_string(gridCount_) + ".manifest.json";
    }

    /** Span-trace export path (written by finish() when the global
     *  tracer is enabled): BENCH_<name>.spans.json. */
    std::string spansPath() const
    {
        return "BENCH_" + name_ + ".spans.json";
    }

    const std::vector<sweep::CellError> &errors() const
    {
        return errors_;
    }
    std::size_t skipped() const { return skipped_; }
    std::size_t resumed() const { return resumed_; }

    /**
     * Process exit code for this report: 0 when every cell produced
     * a result, 130 when a shutdown request skipped cells (the
     * conventional SIGINT code), 1 when cells failed outright.
     */
    int
    exitCode() const
    {
        if (skipped_ > 0)
            return 130;
        return errors_.empty() ? 0 : 1;
    }

    /** Write BENCH_<name>.json; reports failure on stderr. */
    bool
    write() const
    {
        obs::JsonValue root = obs::JsonValue::object();
        root.set("schema", obs::JsonValue("sdbp.bench_report/1"));
        root.set("bench", obs::JsonValue(name_));
        root.set("paper_ref", obs::JsonValue(paperRef_));
        obs::JsonValue config = obs::JsonValue::object();
        config.set("warmup_instructions", obs::JsonValue(warmup_));
        config.set("measure_instructions", obs::JsonValue(measure_));
        root.set("config", std::move(config));

        obs::JsonValue tables = obs::JsonValue::array();
        for (const auto &[title, table] : tables_) {
            obs::JsonValue jt = obs::JsonValue::object();
            jt.set("title", obs::JsonValue(title));
            obs::JsonValue headers = obs::JsonValue::array();
            for (const auto &h : table->headers())
                headers.push(obs::JsonValue(h));
            jt.set("headers", std::move(headers));
            obs::JsonValue rows = obs::JsonValue::array();
            for (const auto &row : table->rows()) {
                obs::JsonValue jr = obs::JsonValue::array();
                for (const auto &cell : row)
                    jr.push(obs::JsonValue(cell));
                rows.push(std::move(jr));
            }
            jt.set("rows", std::move(rows));
            tables.push(std::move(jt));
        }
        root.set("tables", std::move(tables));

        obs::JsonValue notes = obs::JsonValue::array();
        for (const auto &n : notes_)
            notes.push(obs::JsonValue(n));
        root.set("notes", std::move(notes));

        // Wall-clock accounting: how long the sweeps took with how
        // many workers, and what the summed per-run cost was.
        // effective_parallelism = run_seconds_total /
        // sweep_wall_seconds measures achieved concurrency; it
        // equals the speedup over a serial sweep only when every
        // worker has a dedicated core (per-run wall clocks inflate
        // under time-sharing — see EXPERIMENTS.md).
        obs::JsonValue timing = obs::JsonValue::object();
        timing.set("jobs",
                   obs::JsonValue(static_cast<std::uint64_t>(jobs_)));
        timing.set("total_wall_seconds",
                   obs::JsonValue(std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start_)
                                      .count()));
        timing.set("sweep_wall_seconds",
                   obs::JsonValue(sweepSeconds_));
        timing.set("simulated_runs",
                   obs::JsonValue(
                       static_cast<std::uint64_t>(runs_.size())));
        timing.set("run_seconds_total", obs::JsonValue(runSeconds_));
        if (sweepSeconds_ > 0)
            timing.set("effective_parallelism",
                       obs::JsonValue(runSeconds_ / sweepSeconds_));
        obs::JsonValue run_list = obs::JsonValue::array();
        for (const auto &r : runs_) {
            obs::JsonValue jr = obs::JsonValue::object();
            jr.set("run", obs::JsonValue(r.run));
            jr.set("policy", obs::JsonValue(r.policy));
            jr.set("seconds", obs::JsonValue(r.seconds));
            if (r.instructions > 0)
                jr.set("ns_per_instr",
                       obs::JsonValue(
                           r.seconds * 1e9 /
                           static_cast<double>(r.instructions)));
            if (r.hostPerf.valid)
                jr.set("host_ipc",
                       obs::JsonValue(r.hostPerf.hostIpc()));
            run_list.push(std::move(jr));
        }
        timing.set("runs", std::move(run_list));
        root.set("timing", std::move(timing));

        // Resilience accounting: failed/skipped cells and how many
        // were restored from a sweep manifest instead of re-run.
        obs::JsonValue sweep_block = obs::JsonValue::object();
        obs::JsonValue error_list = obs::JsonValue::array();
        for (const auto &e : errors_) {
            obs::JsonValue je = obs::JsonValue::object();
            je.set("run", obs::JsonValue(e.run));
            je.set("policy", obs::JsonValue(e.policy));
            je.set("error", obs::JsonValue(e.message));
            je.set("attempts", obs::JsonValue(
                                   std::uint64_t{e.attempts}));
            je.set("timed_out", obs::JsonValue(e.timedOut));
            // Crash detail only for crashed cells, so reports from
            // in-process sweeps keep their exact historical bytes.
            if (e.crashed) {
                je.set("crashed", obs::JsonValue(true));
                je.set("signal",
                       obs::JsonValue(
                           static_cast<std::uint64_t>(e.signal)));
            }
            error_list.push(std::move(je));
        }
        sweep_block.set("errors", std::move(error_list));
        sweep_block.set("skipped_cells",
                        obs::JsonValue(std::uint64_t{skipped_}));
        sweep_block.set("resumed_cells",
                        obs::JsonValue(std::uint64_t{resumed_}));
        root.set("sweep", std::move(sweep_block));

        const std::string path = "BENCH_" + name_ + ".json";
        if (!util::atomicWriteFile(path, root.dump() + "\n")) {
            std::cerr << "cannot write " << path << "\n";
            return false;
        }
        std::cout << "[wrote " << path << "]\n";
        return true;
    }

  private:
    struct RunTiming
    {
        std::string run;
        std::string policy;
        double seconds;
        /** Simulated instructions (0 when not known). */
        std::uint64_t instructions;
        util::PerfCounters::Sample hostPerf;
    };

    std::string name_;
    std::string paperRef_;
    InstCount warmup_;
    InstCount measure_;
    /** (title, table); tables must outlive the report. */
    std::vector<std::pair<std::string, const TextTable *>> tables_;
    std::vector<std::string> notes_;
    std::vector<sweep::CellError> errors_;
    std::size_t skipped_ = 0;
    std::size_t resumed_ = 0;
    unsigned gridCount_ = 0;
    unsigned jobs_ = sweep::defaultJobs();
    double sweepSeconds_ = 0;
    double runSeconds_ = 0;
    std::vector<RunTiming> runs_;
    std::chrono::steady_clock::time_point start_ =
        std::chrono::steady_clock::now();
};

/**
 * The one shared sweep entry point of the bench binaries: fan the
 * benchmarks x policies grid across SDBP_JOBS workers and fold its
 * wall-clock accounting into @p report.  Rows and columns come back
 * in input order, so tables print exactly as the old serial loops
 * did.
 */
inline sweep::Grid
runGrid(JsonReport &report, const std::vector<std::string> &benchmarks,
        const std::vector<PolicyKind> &policies, const RunConfig &cfg)
{
    sweep::installShutdownHandler();
    sweep::SweepOptions opts = sweep::SweepOptions::fromEnvironment();
    opts.manifestPath = report.nextManifestPath();
    sweep::Grid g = sweep::runGrid(benchmarks, policies, cfg, opts);
    report.addGrid(g);
    return g;
}

/** Multicore-mix equivalent of bench::runGrid. */
inline sweep::MixGrid
runMixGrid(JsonReport &report, const std::vector<MixProfile> &mixes,
           const std::vector<PolicyKind> &policies,
           const RunConfig &cfg)
{
    sweep::installShutdownHandler();
    sweep::SweepOptions opts = sweep::SweepOptions::fromEnvironment();
    opts.manifestPath = report.nextManifestPath();
    sweep::MixGrid g = sweep::runMixGrid(mixes, policies, cfg, opts);
    report.addGrid(g);
    return g;
}

/**
 * Close out a bench binary: print any cell failures, write the JSON
 * report, and return the process exit code (0 all cells ran, 1 cells
 * failed, 130 interrupted).  Use as `return bench::finish(report);`.
 */
inline int
finish(JsonReport &report)
{
    for (const auto &e : report.errors()) {
        std::cerr << "FAILED cell " << e.run << "/" << e.policy
                  << " after " << e.attempts << " attempt(s)"
                  << (e.timedOut ? " [timeout]" : "");
        if (e.crashed) {
            std::cerr << " [crashed";
            if (e.signal != 0)
                std::cerr << ", signal " << e.signal;
            std::cerr << "]";
        }
        std::cerr << ": " << e.message << "\n";
    }
    if (report.skipped() > 0)
        std::cerr << "interrupted: " << report.skipped()
                  << " cell(s) skipped; re-run with SDBP_RESUME=1 to "
                     "continue from the manifest\n";
    // Diagnostics go to stderr: bench stdout is the figure/table
    // text and must stay byte-identical run to run.
    if (report.resumed() > 0)
        std::cerr << "[resumed " << report.resumed()
                  << " cell(s) from manifest]\n";
    const obs::SpanTracer &tracer = obs::SpanTracer::global();
    if (tracer.enabled() && tracer.recorded() > 0) {
        const std::string spans_path = report.spansPath();
        if (tracer.writeChromeTrace(spans_path))
            std::cerr << "[wrote " << spans_path << " ("
                      << tracer.size() << " spans, "
                      << tracer.dropped() << " dropped)]\n";
        else
            std::cerr << "cannot write " << spans_path << "\n";
    }
    report.write();
    footer();
    return report.exitCode();
}

/**
 * sweep::parallelFor with SDBP_JOBS workers, its wall clock folded
 * into @p report — for bench work that is not a plain grid (optimal
 * replays, per-size sensitivity cells).
 */
inline void
timedParallelFor(JsonReport &report, std::size_t n,
                 const std::function<void(std::size_t)> &fn)
{
    const auto start = std::chrono::steady_clock::now();
    sweep::parallelFor(n, sweep::defaultJobs(), fn);
    report.addSweepSeconds(std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start)
                               .count());
}

} // namespace sdbp::bench

#endif // SDBP_BENCH_COMMON_HH
