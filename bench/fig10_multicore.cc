/**
 * @file
 * Fig. 10: normalized weighted speedup of the quad-core mixes with
 * an 8 MB shared LLC, for (a) a default LRU cache and (b) a default
 * random cache.  Also prints the average normalized MPKIs quoted in
 * Sec. VII-D.
 */

#include "bench/common.hh"

using namespace sdbp;

namespace
{

/** @return the rendered table so main can add it to the report. */
TextTable
runPart(const char *title, const std::vector<PolicyKind> &policies,
        const RunConfig &cfg)
{
    std::cout << "\n--- " << title << " ---\n";

    // LRU baseline per mix: weighted IPC and misses.
    std::map<std::string, double> lru_weighted;
    std::map<std::string, double> lru_mpki;
    for (const auto &mix : multicoreMixes()) {
        const auto lru = runMulticore(mix, PolicyKind::Lru, cfg);
        lru_weighted[mix.name] = weightedIpc(lru, cfg);
        lru_mpki[mix.name] = lru.mpki;
    }

    std::vector<std::string> headers = {"Mix"};
    for (const auto kind : policies)
        headers.push_back(policyName(kind));
    TextTable t(headers);

    std::map<std::string, std::vector<double>> speedups;
    std::map<std::string, std::vector<double>> norm_mpki;
    for (const auto &mix : multicoreMixes()) {
        auto &row = t.row().cell(mix.name);
        for (const auto kind : policies) {
            const auto r = runMulticore(mix, kind, cfg);
            const double w = weightedIpc(r, cfg);
            const double speedup = w / lru_weighted[mix.name];
            speedups[policyName(kind)].push_back(speedup);
            norm_mpki[policyName(kind)].push_back(
                lru_mpki[mix.name] > 0 ? r.mpki / lru_mpki[mix.name]
                                       : 1.0);
            row.cell(speedup, 3);
        }
    }
    auto &mean_row = t.row().cell("gmean");
    for (const auto kind : policies)
        mean_row.cell(gmean(speedups[policyName(kind)]), 3);
    t.print(std::cout);

    std::cout << "Average normalized MPKI:";
    for (const auto kind : policies)
        std::cout << "  " << policyName(kind) << " "
                  << formatDouble(amean(norm_mpki[policyName(kind)]),
                                  2);
    std::cout << "\n";
    return t;
}

} // anonymous namespace

int
main()
{
    bench::banner(
        "Fig. 10: quad-core normalized weighted speedup (8MB LLC)",
        "Fig. 10(a)/(b), Sec. VII-D");

    RunConfig cfg = RunConfig::quadCore();
    // Quad-core runs cost ~4x a single-core run; halving the
    // per-thread budget keeps the full ten-mix sweep tractable while
    // the 8 MB LLC still warms fully.  SDBP_INSTRUCTIONS scales it.
    cfg.measureInstructions =
        std::max<InstCount>(cfg.measureInstructions / 2, 500000);

    const TextTable ta =
        runPart("(a) default LRU cache", multicoreLruPolicies(), cfg);
    std::cout <<
        "Paper reference (gmean): Sampler 1.125, CDBP 1.10, TADIP "
        "1.076, TDBP 1.056, RRIP 1.045.\n";

    const TextTable tb = runPart("(b) default random cache",
                                 multicoreRandomPolicies(), cfg);
    std::cout <<
        "Paper reference (gmean): Random Sampler 1.07, Random CDBP "
        "1.06, Random ~1.00.\n"
        "Paper normalized MPKIs: Sampler 0.77, CDBP 0.79, TADIP 0.85, "
        "TDBP 0.95, Random Sampler 0.82,\nRRIP 0.93 (multi-core), "
        "Random CDBP 0.84.\n";

    bench::JsonReport report("fig10_multicore",
                             "Fig. 10(a)/(b), Sec. VII-D", cfg);
    report.addTable("(a) default LRU cache", ta);
    report.addTable("(b) default random cache", tb);
    report.note("Paper gmean: Sampler 1.125, CDBP 1.10, TADIP 1.076, "
                "TDBP 1.056, RRIP 1.045; Random Sampler 1.07, Random "
                "CDBP 1.06");
    report.write();
    bench::footer();
    return 0;
}
