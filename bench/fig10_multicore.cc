/**
 * @file
 * Fig. 10: normalized weighted speedup of the quad-core mixes with
 * an 8 MB shared LLC, for (a) a default LRU cache and (b) a default
 * random cache.  Also prints the average normalized MPKIs quoted in
 * Sec. VII-D.
 */

#include <set>

#include "bench/common.hh"

using namespace sdbp;

namespace
{

/** @return the rendered table so main can add it to the report. */
TextTable
runPart(bench::JsonReport &report, const char *title,
        const std::vector<PolicyKind> &policies, const RunConfig &cfg)
{
    std::cout << "\n--- " << title << " ---\n";

    // One grid: the LRU baseline as column 0, then every policy.
    std::vector<PolicyKind> cols = {PolicyKind::Lru};
    cols.insert(cols.end(), policies.begin(), policies.end());
    const auto grid =
        bench::runMixGrid(report, multicoreMixes(), cols, cfg);

    std::vector<std::string> headers = {"Mix"};
    for (const auto kind : policies)
        headers.push_back(policyName(kind));
    TextTable t(headers);

    std::map<std::string, std::vector<double>> speedups;
    std::map<std::string, std::vector<double>> norm_mpki;
    for (std::size_t m = 0; m < grid.mixes.size(); ++m) {
        const auto &lru = grid.at(m, 0);
        const double lru_weighted = weightedIpc(lru, cfg);
        auto &row = t.row().cell(grid.mixes[m].name);
        for (std::size_t p = 0; p < policies.size(); ++p) {
            const auto &r = grid.at(m, p + 1);
            const double w = weightedIpc(r, cfg);
            const double speedup = w / lru_weighted;
            speedups[policyName(policies[p])].push_back(speedup);
            norm_mpki[policyName(policies[p])].push_back(
                lru.mpki > 0 ? r.mpki / lru.mpki : 1.0);
            row.cell(speedup, 3);
        }
    }
    auto &mean_row = t.row().cell("gmean");
    for (const auto kind : policies)
        mean_row.cell(gmean(speedups[policyName(kind)]), 3);
    t.print(std::cout);

    std::cout << "Average normalized MPKI:";
    for (const auto kind : policies)
        std::cout << "  " << policyName(kind) << " "
                  << formatDouble(amean(norm_mpki[policyName(kind)]),
                                  2);
    std::cout << "\n";
    return t;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    bench::banner(
        "Fig. 10: quad-core normalized weighted speedup (8MB LLC)",
        "Fig. 10(a)/(b), Sec. VII-D");

    RunConfig cfg = RunConfig::quadCore();
    // Quad-core runs cost ~4x a single-core run; halving the
    // per-thread budget keeps the full ten-mix sweep tractable while
    // the 8 MB LLC still warms fully.  SDBP_INSTRUCTIONS scales it.
    cfg.measureInstructions =
        std::max<InstCount>(cfg.measureInstructions / 2, 500000);

    bench::JsonReport report("fig10_multicore",
                             "Fig. 10(a)/(b), Sec. VII-D", cfg);

    // Warm the isolatedIpc memo in parallel so the weightedIpc
    // post-processing below never simulates serially.
    std::set<std::string> solo_set;
    for (const auto &mix : multicoreMixes())
        solo_set.insert(mix.benchmarks.begin(), mix.benchmarks.end());
    const std::vector<std::string> solo(solo_set.begin(),
                                        solo_set.end());
    bench::timedParallelFor(report, solo.size(), [&](std::size_t i) {
        (void)isolatedIpc(solo[i], cfg);
    });

    const TextTable ta = runPart(report, "(a) default LRU cache",
                                 multicoreLruPolicies(), cfg);
    std::cout <<
        "Paper reference (gmean): Sampler 1.125, CDBP 1.10, TADIP "
        "1.076, TDBP 1.056, RRIP 1.045.\n";

    const TextTable tb = runPart(report, "(b) default random cache",
                                 multicoreRandomPolicies(), cfg);
    std::cout <<
        "Paper reference (gmean): Random Sampler 1.07, Random CDBP "
        "1.06, Random ~1.00.\n"
        "Paper normalized MPKIs: Sampler 0.77, CDBP 0.79, TADIP 0.85, "
        "TDBP 0.95, Random Sampler 0.82,\nRRIP 0.93 (multi-core), "
        "Random CDBP 0.84.\n";

    report.addTable("(a) default LRU cache", ta);
    report.addTable("(b) default random cache", tb);
    report.note("Paper gmean: Sampler 1.125, CDBP 1.10, TADIP 1.076, "
                "TDBP 1.056, RRIP 1.045; Random Sampler 1.07, Random "
                "CDBP 1.06");
    return bench::finish(report);
}
