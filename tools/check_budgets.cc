/**
 * @file
 * Hardware-budget audit tool.
 *
 * Prints, for every shipped predictor configuration, the storage the
 * live structures report at runtime next to the compile-time numbers
 * of `power/budget_audit.hh`, and fails (exit 1) on any mismatch.
 * The interesting work already happened at compile time — the
 * `static_assert` audit pins the configs to the paper's budgets —
 * so this tool is the human-readable rendering of that proof plus a
 * belt-and-braces runtime cross-check.
 *
 * Usage: check_budgets [llc_blocks]   (default 32768 = 2 MB of 64 B)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "power/budget_audit.hh"
#include "power/storage.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace sdbp;

    std::uint64_t llc_blocks = budget_audit::llcBlocks2MB;
    if (argc > 1)
        llc_blocks = std::strtoull(argv[1], nullptr, 10);
    if (llc_blocks == 0) {
        std::cerr << "usage: check_budgets [llc_blocks>0]\n";
        return 2;
    }
    const std::uint64_t llc_bytes = llc_blocks * 64;

    std::cout << "Hardware-budget audit: " << llc_blocks
              << " LLC blocks (" << llc_bytes / 1024 << " KB)\n\n";

    TextTable t({"Config", "Structures (KB)", "Audit (KB)",
                 "Metadata bits/blk", "Audit bits/blk", "Total (KB)",
                 "% of LLC", "Status"});

    bool all_ok = true;
    for (const auto &e : StorageModel::shipped(llc_blocks)) {
        const bool ok = e.consistent();
        all_ok = all_ok && ok;
        t.row()
            .cell(e.label)
            .cell(e.breakdown.predictorKB(), 4)
            .cell(static_cast<double>(e.auditPredictorBits) / 8.0 /
                      1024.0,
                  4)
            .cell(e.breakdown.metadataBitsPerBlock)
            .cell(e.auditMetadataBitsPerBlock)
            .cell(e.breakdown.totalKB(), 4)
            .cell(formatPercent(e.breakdown.fractionOfCache(llc_bytes),
                                2))
            .cell(ok ? "ok" : "MISMATCH");
    }
    t.print(std::cout);

    if (!all_ok) {
        std::cerr << "\nbudget audit FAILED: a live structure "
                     "disagrees with the constexpr accounting\n";
        return 1;
    }
    std::cout << "\nAll structures match the compile-time audit "
                 "(which static_asserts the paper's Table I "
                 "budgets).\n";
    return 0;
}
