#!/usr/bin/env python3
"""Record benchmark medians in the committed perf trendline.

Usage:
    bench_history.py append RESULTS.json [--history PATH]
                     [--commit HASH] [--benchmark NAME ...]
    bench_history.py show [--history PATH] [--benchmark NAME]

``append`` reads a google-benchmark JSON file (BENCH_micro_ops.json
format), takes the median entry of each selected benchmark and
appends one ``sdbp.bench_trend/1`` JSONL record per benchmark to the
history file (bench/history/BENCH_trend.jsonl by default).  Each
record carries the commit hash and commit date plus a host
fingerprint (machine + CPU model), so the trend can separate code
changes from host changes, and the ns/instr derivation shared with
perf_compare.py --ratchet.

``show`` prints the recorded trend of one benchmark
(BM_SimulatedInstruction by default) in append order.

Stdlib only -- this runs in CI where installing packages is
off-limits.
"""

import argparse
import datetime
import json
import os
import platform
import subprocess
import sys

from _common import load_benchmarks, ns_per_instr

DEFAULT_HISTORY = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "bench", "history", "BENCH_trend.jsonl")
DEFAULT_BENCHMARKS = ["BM_SimulatedInstruction"]
SCHEMA = "sdbp.bench_trend/1"


def git(*args):
    """Output of a git command, or None when unavailable."""
    try:
        return subprocess.run(
            ["git", *args], check=True, capture_output=True,
            text=True).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return None


def host_fingerprint():
    """Coarse host identity: kernel machine string + CPU model."""
    cpu = ""
    try:
        with open("/proc/cpuinfo") as f:
            for line in f:
                if line.lower().startswith("model name"):
                    cpu = line.split(":", 1)[1].strip()
                    break
    except OSError:
        pass
    u = platform.uname()
    return {
        "system": u.system,
        "machine": u.machine,
        "cpu": cpu or u.processor,
    }


def load_history(path):
    """History records in file order; missing file -> empty list."""
    records = []
    try:
        with open(path) as f:
            for i, line in enumerate(f, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as e:
                    sys.exit(f"error: {path}:{i} is not valid "
                             f"JSON: {e}")
    except OSError:
        pass
    return records


def cmd_append(args):
    results = load_benchmarks(args.results)
    commit = args.commit or git("rev-parse", "HEAD") or "unknown"
    date = (git("show", "-s", "--format=%cI", commit)
            if commit != "unknown" else None)
    if not date:
        date = datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds")
    host = host_fingerprint()

    names = args.benchmark or DEFAULT_BENCHMARKS
    records = []
    for name in names:
        if name not in results:
            sys.exit(f"error: benchmark {name} not in {args.results}")
        entry = results[name]
        records.append({
            "schema": SCHEMA,
            "commit": commit,
            "date": date,
            "host": host,
            "benchmark": name,
            "cpu_time": entry["cpu_time"],
            "time_unit": entry.get("time_unit", "ns"),
            "ns_per_instr": ns_per_instr(entry),
        })

    os.makedirs(os.path.dirname(args.history) or ".", exist_ok=True)
    with open(args.history, "a") as f:
        for rec in records:
            f.write(json.dumps(rec, sort_keys=True) + "\n")
    for rec in records:
        print(f"recorded {rec['benchmark']} @ {rec['commit'][:12]}: "
              f"{rec['cpu_time']:.3f} {rec['time_unit']} "
              f"({rec['ns_per_instr']:.2f} ns/instr) "
              f"-> {args.history}")
    return 0


def cmd_show(args):
    records = load_history(args.history)
    name = (args.benchmark[0] if args.benchmark
            else DEFAULT_BENCHMARKS[0])
    rows = [r for r in records if r.get("benchmark") == name]
    if not rows:
        print(f"no records for {name} in {args.history}")
        return 1
    best = min(r["ns_per_instr"] for r in rows)
    print(f"{name} ({len(rows)} record(s), best "
          f"{best:.2f} ns/instr):")
    for r in rows:
        mark = " <-- best" if r["ns_per_instr"] == best else ""
        print(f"  {r['commit'][:12]}  {r['date']}  "
              f"{r['ns_per_instr']:8.2f} ns/instr{mark}")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)

    ap_append = sub.add_parser(
        "append", help="append medians of a results file")
    ap_append.add_argument("results",
                           help="google-benchmark JSON results")
    ap_append.add_argument("--history", default=DEFAULT_HISTORY)
    ap_append.add_argument("--commit",
                           help="commit hash (default: git HEAD)")
    ap_append.add_argument("--benchmark", action="append", default=[],
                           help="benchmark to record (repeatable; "
                                "default: BM_SimulatedInstruction)")
    ap_append.set_defaults(fn=cmd_append)

    ap_show = sub.add_parser("show", help="print the recorded trend")
    ap_show.add_argument("--history", default=DEFAULT_HISTORY)
    ap_show.add_argument("--benchmark", action="append", default=[])
    ap_show.set_defaults(fn=cmd_show)

    args = ap.parse_args()
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
