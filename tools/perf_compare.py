#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and gate on regressions.

Usage:
    perf_compare.py BASE.json PR.json [--filter NAME ...] [--max-regress PCT]

Reads the ``benchmarks`` array of each file (google-benchmark's
--benchmark_out / BENCH_micro_ops.json format), matches entries by
name, and fails (exit 1) if any selected benchmark's cpu_time grew by
more than --max-regress percent from BASE to PR.  With no --filter,
every benchmark present in both files is checked.

Stdlib only -- this runs in CI where installing packages is off-limits.
"""

import argparse
import sys

from _common import load_benchmarks


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("base", help="baseline benchmark JSON")
    ap.add_argument("pr", help="candidate benchmark JSON")
    ap.add_argument("--filter", action="append", default=[],
                    help="benchmark name to check (repeatable); "
                         "default: all common benchmarks")
    ap.add_argument("--max-regress", type=float, default=10.0,
                    help="max allowed cpu_time increase in percent "
                         "(default: 10)")
    args = ap.parse_args()

    base = load_benchmarks(args.base)
    pr = load_benchmarks(args.pr)

    names = args.filter or sorted(set(base) & set(pr))
    failed = False
    for name in names:
        if name not in base or name not in pr:
            print(f"FAIL {name}: missing from "
                  f"{'base' if name not in base else 'PR'} results")
            failed = True
            continue
        b, p = base[name]["cpu_time"], pr[name]["cpu_time"]
        unit = base[name].get("time_unit", "ns")
        delta = (p - b) / b * 100.0 if b else 0.0
        status = "FAIL" if delta > args.max_regress else "ok"
        print(f"{status:4s} {name}: {b:.2f} -> {p:.2f} {unit}/op "
              f"({delta:+.1f}%, limit +{args.max_regress:.0f}%)")
        if delta > args.max_regress:
            failed = True

    if not names:
        print("FAIL: no benchmarks in common between the two files")
        failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
