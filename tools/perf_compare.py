#!/usr/bin/env python3
"""Compare benchmark results and gate on regressions.

Pairwise mode:
    perf_compare.py BASE.json PR.json [--filter NAME ...]
                    [--max-regress PCT]

Reads the ``benchmarks`` array of each file (google-benchmark's
--benchmark_out / BENCH_micro_ops.json format), matches entries by
name, and fails (exit 1) if any selected benchmark's cpu_time grew by
more than --max-regress percent from BASE to PR.  With no --filter,
every benchmark present in both files is checked.

Ratchet mode:
    perf_compare.py PR.json --ratchet HISTORY.jsonl [--report-only]
                    [--filter NAME ...] [--max-regress PCT]

Compares the PR's ns/instr against the *best ever recorded* in the
bench_history.py trendline (bench/history/BENCH_trend.jsonl): the bar
only moves down.  Exceeding the best by more than --max-regress
percent fails; being merely slower than the best prints a drift
warning.  --report-only prints the same verdicts but always exits 0
(the two-PR burn-in mode before the gate goes live).

Stdlib only -- this runs in CI where installing packages is off-limits.
"""

import argparse
import sys

from _common import load_benchmarks, ns_per_instr
from bench_history import load_history


def compare_pair(args):
    base = load_benchmarks(args.files[0])
    pr = load_benchmarks(args.files[1])

    names = args.filter or sorted(set(base) & set(pr))
    failed = False
    for name in names:
        if name not in base or name not in pr:
            print(f"FAIL {name}: missing from "
                  f"{'base' if name not in base else 'PR'} results")
            failed = True
            continue
        b, p = base[name]["cpu_time"], pr[name]["cpu_time"]
        unit = base[name].get("time_unit", "ns")
        delta = (p - b) / b * 100.0 if b else 0.0
        status = "FAIL" if delta > args.max_regress else "ok"
        print(f"{status:4s} {name}: {b:.2f} -> {p:.2f} {unit}/op "
              f"({delta:+.1f}%, limit +{args.max_regress:.0f}%)")
        if delta > args.max_regress:
            failed = True

    if not names:
        print("FAIL: no benchmarks in common between the two files")
        failed = True
    return 1 if failed else 0


def compare_ratchet(args):
    pr = load_benchmarks(args.files[0])
    history = load_history(args.ratchet)
    if not history:
        print(f"ratchet: no history in {args.ratchet}; nothing to "
              "compare against (record a baseline with "
              "bench_history.py append)")
        return 0

    recorded = sorted({r.get("benchmark") for r in history
                       if "ns_per_instr" in r})
    names = args.filter or [n for n in recorded if n in pr]
    failed = False
    for name in names:
        rows = [r for r in history
                if r.get("benchmark") == name and "ns_per_instr" in r]
        if name not in pr or not rows:
            print(f"FAIL {name}: missing from "
                  f"{'PR results' if name not in pr else 'history'}")
            failed = True
            continue
        best = min(rows, key=lambda r: r["ns_per_instr"])
        current = ns_per_instr(pr[name])
        delta = ((current - best["ns_per_instr"]) /
                 best["ns_per_instr"] * 100.0)
        if delta > args.max_regress:
            status, failed = "FAIL", True
        elif delta > 0:
            status = "WARN"
        else:
            status = "ok"
        print(f"{status:4s} {name}: {current:.2f} ns/instr vs best "
              f"{best['ns_per_instr']:.2f} "
              f"@ {best.get('commit', '?')[:12]} "
              f"({delta:+.1f}%, limit +{args.max_regress:.0f}%)"
            + (" [drift]" if status == "WARN" else ""))

    if not names:
        print("FAIL: no benchmarks in common between PR results and "
              "history")
        failed = True
    if failed and args.report_only:
        print("ratchet: regressions found, but --report-only keeps "
              "the exit code 0")
        return 0
    return 1 if failed else 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="+",
                    help="BASE.json PR.json (pairwise) or PR.json "
                         "(--ratchet)")
    ap.add_argument("--filter", action="append", default=[],
                    help="benchmark name to check (repeatable); "
                         "default: all common benchmarks")
    ap.add_argument("--max-regress", type=float, default=10.0,
                    help="max allowed increase in percent "
                         "(default: 10)")
    ap.add_argument("--ratchet", metavar="HISTORY.jsonl",
                    help="compare ns/instr against the best recorded "
                         "trendline entry instead of a base file")
    ap.add_argument("--report-only", action="store_true",
                    help="with --ratchet: print verdicts but exit 0")
    args = ap.parse_args()

    if args.ratchet:
        if len(args.files) != 1:
            ap.error("--ratchet takes exactly one results file")
        return compare_ratchet(args)
    if len(args.files) != 2:
        ap.error("pairwise mode takes exactly BASE.json PR.json")
    return compare_pair(args)


if __name__ == "__main__":
    sys.exit(main())
