"""A pragmatic C++ source model for the contract checker.

No libclang is available in the build image, so this module scans C++
the honest-but-simple way: strip comments and string literals
(preserving line numbers), then walk braces while tracking a scope
stack of namespaces and classes.  Function definitions are recognized
at their opening brace; their bodies are captured verbatim for the
rule pack, and calls are extracted with a small set of regexes.

The model is deliberately conservative: anything it cannot resolve it
skips rather than guesses, and the binary audit (hotpath_audit.py)
backstops what the source level cannot see (inlining, templates,
library internals).
"""

import re
from dataclasses import dataclass, field

# Keywords that look like calls to the extractor.
_NOT_CALLS = frozenset({
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "catch", "decltype", "noexcept", "static_assert",
    "static_cast", "const_cast", "reinterpret_cast", "dynamic_cast",
    "defined", "assert", "typeid", "throw", "new", "delete",
})

_ALLOW_RE = re.compile(r"//\s*sdbp-lint:\s*allow\(([\w*,\s-]+)\)")
_ID_CALL_RE = re.compile(r"([A-Za-z_][\w]*(?:::[\w~]+)*)\s*\(")


def strip_comments_and_strings(text):
    """Blank comments and string/char literals, preserving newlines.

    Returns (stripped_text, allows) where allows maps a 1-based line
    number to the set of rule ids suppressed on that line via
    ``// sdbp-lint: allow(rule-a, rule-b)``.
    """
    allows = {}
    for i, line in enumerate(text.splitlines(), start=1):
        m = _ALLOW_RE.search(line)
        if m:
            allows[i] = {r.strip() for r in m.group(1).split(",")}

    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and
                                 text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i < n:
                out.append("  ")
                i += 2
        elif c == "R" and nxt == '"':
            # Raw string literal: R"delim( ... )delim"
            m = re.match(r'R"([^\s()\\]{0,16})\(', text[i:])
            if not m:
                out.append(c)
                i += 1
                continue
            end = text.find(")" + m.group(1) + '"', i + m.end())
            end = n if end < 0 else end + len(m.group(1)) + 2
            for ch in text[i:end]:
                out.append("\n" if ch == "\n" else " ")
            i = end
        elif c in "\"'":
            quote = c
            out.append(" ")
            i += 1
            while i < n and text[i] != quote:
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            out.append(" ")
            i += 1
        else:
            out.append(c)
            i += 1
    return "".join(out), allows


def _blank_preprocessor(stripped):
    """Blank preprocessor directives (including continuation lines)
    so `#define SDBP_HOT_PATH ...` and friends cannot leak tokens
    into the signature heads.  Conditional blocks themselves are kept
    — scanning both arms of an #if is the conservative choice."""
    out = []
    cont = False
    for line in stripped.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append(" " * len(line))
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


@dataclass
class Function:
    """One function definition or in-class declaration."""
    name: str                # unqualified name
    cls: str                 # enclosing/explicit class, "" for free
    file: str
    line: int                # 1-based line of the signature
    hot: bool = False
    virtual: bool = False
    body: str = ""           # stripped body text ("" for declarations)
    body_line: int = 0       # line where the body starts

    @property
    def symbol(self):
        return f"{self.cls}::{self.name}" if self.cls else self.name


@dataclass
class ClassInfo:
    name: str
    final: bool = False
    virtual_methods: set = field(default_factory=set)
    override_methods: set = field(default_factory=set)
    final_methods: set = field(default_factory=set)


@dataclass
class SourceFile:
    path: str
    text: str
    stripped: str
    allows: dict
    functions: list = field(default_factory=list)
    classes: list = field(default_factory=list)


_NAMESPACE_RE = re.compile(r"namespace(?:\s+([\w:]+))?\s*$")
_CLASS_RE = re.compile(
    r"\b(?:class|struct)\s+(?:\[\[[^\]]*\]\]\s*)?"
    r"(\w+)\s*(final)?\s*(?::[^;{}]*)?$")
_ENUM_RE = re.compile(r"\benum\b[^;{}]*$")
_FUNC_NAME_RE = re.compile(
    r"([A-Za-z_~][\w]*(?:::~?\w+)*)\s*(?:<[^<>();]*>)?\s*\(")
_VIRT_DECL_RE = re.compile(
    r"\bvirtual\b[^;{}]*?([A-Za-z_~]\w*)\s*\([^;{}]*$|"
    r"\bvirtual\b[^;{}]*?\boperator\b")


def _find_matching_brace(text, open_idx):
    """Index one past the brace matching text[open_idx] == '{'."""
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i + 1
    return len(text)


def _head_function(head):
    """If `head` (text before a '{') looks like a function signature,
    return (name, class_qualifier); else None.

    The name is the identifier before the first call-like paren --
    which is the function's own paren for both plain signatures and
    constructors with init-lists.
    """
    if "(" not in head:
        return None
    for m in _FUNC_NAME_RE.finditer(head):
        name = m.group(1)
        base = name.split("::")[-1]
        if base in _NOT_CALLS or base in ("SDBP_HOT_PATH",):
            continue
        # `= {` initializers and lambdas assigned at file scope are
        # not function definitions.
        if "=" in head[:m.start()] and "operator" not in head:
            return None
        cls = ""
        if "::" in name:
            parts = name.split("::")
            cls, name = parts[-2], parts[-1]
        return name, cls
    return None


def _scan_class_decls(cls, body, body_line, path, allows, hot_out):
    """Record virtual/override/final method names declared in a class
    body, and emit Function records for in-class declarations (no
    body) so hot annotations on declarations reach the manifest."""
    # Statements at class depth: split on ';' and '{...}' blocks at
    # depth 0 of the class body.
    i, start, depth = 0, 0, 0
    n = len(body)
    while i < n:
        c = body[i]
        if c == "{":
            end = _find_matching_brace(body, i)
            i = end
            start = i
            continue
        if c == ";":
            stmt = body[start:i]
            line = body_line + body.count("\n", 0, start)
            _record_stmt(cls, stmt, line, path, allows, hot_out)
            i += 1
            start = i
            continue
        i += 1


def _record_stmt(cls, stmt, line, path, allows, hot_out):
    got = _head_function(stmt) if "(" in stmt else None
    name = got[0] if got else None
    if "virtual" in stmt.split() and name:
        cls.virtual_methods.add(name)
    if name and re.search(r"\)\s*[\w\s]*\boverride\b", stmt):
        cls.override_methods.add(name)
        if re.search(r"\boverride\b\s*\bfinal\b|\bfinal\b\s*"
                     r"\boverride\b", stmt):
            cls.final_methods.add(name)
    if name and "SDBP_HOT_PATH" in stmt:
        # Line of the statement's first non-blank content.
        lead = len(stmt) - len(stmt.lstrip())
        decl_line = line + stmt.count("\n", 0, lead)
        hot_out.append(Function(
            name=name, cls=cls.name, file=path, line=decl_line,
            hot=True, virtual="virtual" in stmt.split() or
            "override" in stmt))


def parse_file(path, text=None):
    """Parse one C++ file into a SourceFile model."""
    if text is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            text = f.read()
    stripped, allows = strip_comments_and_strings(text)
    stripped = _blank_preprocessor(stripped)
    sf = SourceFile(path=path, text=text, stripped=stripped,
                    allows=allows)

    i, start = 0, 0
    n = len(stripped)
    scope = []  # list of ("ns"|"class"|"other", ClassInfo|None, end)
    while i < n:
        c = stripped[i]
        if c in ";}":
            if c == "}" and scope and i >= scope[-1][2] - 1:
                scope.pop()
            i += 1
            start = i
            continue
        if c != "{":
            i += 1
            continue

        raw_head = stripped[start:i]
        head = raw_head.strip()
        # Line of the head's first token.
        head_off = start + (len(raw_head) - len(raw_head.lstrip()))
        line = 1 + stripped.count("\n", 0, head_off)

        ns = _NAMESPACE_RE.search(head)
        cls_m = None if _ENUM_RE.search(head) else _CLASS_RE.search(head)
        fn = None
        in_class = scope and scope[-1][0] == "class"
        if not ns and not cls_m:
            fn = _head_function(head)

        if ns:
            scope.append(("ns", None, _find_matching_brace(stripped, i)))
            i += 1
            start = i
        elif cls_m:
            info = ClassInfo(name=cls_m.group(1),
                             final=bool(cls_m.group(2)))
            end = _find_matching_brace(stripped, i)
            sf.classes.append(info)
            hot_decls = []
            _scan_class_decls(info, stripped[i + 1:end - 1],
                              1 + stripped.count("\n", 0, i + 1),
                              path, allows, hot_decls)
            sf.functions.extend(hot_decls)
            scope.append(("class", info, end))
            i += 1
            start = i
        elif fn:
            name, cls = fn
            if not cls and in_class:
                cls = scope[-1][1].name
            end = _find_matching_brace(stripped, i)
            body = stripped[i + 1:end - 1]
            f = Function(
                name=name, cls=cls, file=path, line=line,
                hot="SDBP_HOT_PATH" in head,
                virtual="virtual" in head.split(),
                body=body,
                body_line=1 + stripped.count("\n", 0, i))
            if in_class:
                info = scope[-1][1]
                if f.virtual:
                    info.virtual_methods.add(name)
                if re.search(r"\boverride\b", head):
                    info.override_methods.add(name)
            sf.functions.append(f)
            i = end
            start = i
        else:
            scope.append(("other", None,
                          _find_matching_brace(stripped, i)))
            i += 1
            start = i
    return sf


def extract_calls(body):
    """Yield (name, is_member, args, offset) for call sites in a
    stripped function body.  `args` is the raw argument text."""
    for m in _ID_CALL_RE.finditer(body):
        name = m.group(1)
        base = name.split("::")[-1]
        if base in _NOT_CALLS:
            continue
        before = body[:m.start()].rstrip()
        is_member = before.endswith(".") or before.endswith("->")
        # Declarations like `int foo(` are indistinguishable from
        # calls at this level; the rule pack only keys on known-bad
        # names, so the ambiguity is harmless.
        close = _find_matching_paren(body, m.end() - 1)
        args = body[m.end():close - 1] if close else ""
        yield base, is_member, args, m.start()


def _find_matching_paren(text, open_idx):
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i + 1
    return 0
