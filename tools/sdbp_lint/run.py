#!/usr/bin/env python3
"""sdbp-lint: source-level hot-path and determinism contract checker.

Usage:
    run.py --src src [--baseline tools/sdbp_lint/baseline.json]
           [--manifest out.json] [--update-baseline] [--min-hot N]

Walks the call graph from every SDBP_HOT_PATH-annotated function and
reports fast-path contract violations (hot-* rules), then sweeps every
function in --src for determinism-hygiene violations (det-* rules).
Violations can be suppressed inline with ``// sdbp-lint: allow(rule)``
or collectively in the baseline file, which pairs every suppression
with a one-line justification.

Exit status: 0 clean (modulo baseline), 1 violations or stale scan,
2 usage error.  Stdlib-only; no libclang required.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from cpp_model import parse_file                       # noqa: E402
from rules import (ALL_RULES, Violation, det_violations,  # noqa: E402
                   hot_violations,
                   unordered_iteration_violations)


class DevirtOracle:
    """Project-wide answer to "can a virtual call to `name` be
    devirtualized?"  A name is devirtualizable when some final class
    provides it (the sealed compositions instantiate those classes
    directly) or when some override is itself marked final.  Calls to
    such names are allowed at source level; the binary audit proves
    the sealed symbols really compile flat."""

    def __init__(self, files):
        self.virtuals = set()
        self.final_names = set()
        for sf in files:
            for ci in sf.classes:
                self.virtuals |= ci.virtual_methods
                self.final_names |= ci.final_methods
                if ci.final:
                    self.final_names |= (ci.virtual_methods |
                                         ci.override_methods)

    def is_virtual(self, name):
        return name in self.virtuals

    def is_final_somewhere(self, name):
        return name in self.final_names


def collect_sources(root):
    out = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames.sort()
        for fn in sorted(filenames):
            if fn.endswith((".hh", ".cc", ".h", ".cpp", ".hpp")):
                out.append(os.path.join(dirpath, fn))
    return out


def build_call_graph(functions):
    """name -> [functions with bodies]; resolution is by unqualified
    name, preferring a same-class match."""
    by_name = {}
    for f in functions:
        if f.body:
            by_name.setdefault(f.name, []).append(f)
    return by_name


def resolve(call_name, caller, by_name):
    cands = by_name.get(call_name, [])
    same = [f for f in cands if f.cls == caller.cls]
    return same or cands


def hot_reachable(roots, by_name):
    """Map each function (id) to one hot root symbol that reaches it."""
    from cpp_model import extract_calls
    reached = {}
    for root in roots:
        stack = [root]
        seen = set()
        while stack:
            f = stack.pop()
            if id(f) in seen:
                continue
            seen.add(id(f))
            reached.setdefault(id(f), (f, root.symbol))
            for name, _m, _a, _o in extract_calls(f.body):
                for callee in resolve(name, f, by_name):
                    if id(callee) not in seen:
                        stack.append(callee)
    return reached


def load_baseline(path):
    if not path or not os.path.exists(path):
        return []
    with open(path) as f:
        doc = json.load(f)
    return doc.get("entries", [])


def baseline_key(entry):
    return (entry["rule"], entry["file"], entry.get("symbol", ""),
            entry.get("message", ""))


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--src",
                    help="source tree to lint (e.g. src)")
    ap.add_argument("--baseline",
                    help="baseline JSON of accepted violations")
    ap.add_argument("--update-baseline", action="store_true",
                    help="rewrite the baseline from current "
                         "violations, keeping existing justifications")
    ap.add_argument("--manifest",
                    help="write the SDBP_HOT_PATH symbol manifest "
                         "(JSON) consumed by tools/hotpath_audit.py")
    ap.add_argument("--min-hot", type=int, default=0,
                    help="fail unless at least N hot functions were "
                         "found (guards against a silent scan "
                         "failure; CI uses 10)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule ids and exit")
    args = ap.parse_args(argv)

    if args.list_rules:
        for rid, desc in sorted(ALL_RULES.items()):
            print(f"{rid:18s} {desc}")
        return 0

    if not args.src:
        ap.error("--src is required (unless --list-rules)")
    if not os.path.isdir(args.src):
        ap.error(f"--src {args.src} is not a directory")

    # Report paths relative to the source tree's parent ("src/...")
    # so baseline keys are stable no matter where the lint runs from.
    src_abs = os.path.abspath(args.src)
    rel_root = os.path.dirname(src_abs)

    files = []
    for p in collect_sources(src_abs):
        sf = parse_file(p)
        sf.path = os.path.relpath(p, rel_root)
        for f in sf.functions:
            f.file = sf.path
        files.append(sf)
    devirt = DevirtOracle(files)
    functions = [f for sf in files for f in sf.functions]
    by_name = build_call_graph(functions)

    # Hot surface: annotation on either the in-class declaration or
    # the out-of-line definition marks the (class, name) pair hot.
    hot_keys = {(f.cls, f.name) for f in functions if f.hot}
    roots = [f for f in functions
             if f.body and (f.cls, f.name) in hot_keys]
    hot_decl_only = [f for f in functions
                     if f.hot and not f.body and
                     not any(g.body and (g.cls, g.name) ==
                             (f.cls, f.name) for g in functions)]

    if args.manifest:
        entries = sorted({(f.cls, f.name): {
            "symbol": f.symbol, "class": f.cls, "name": f.name,
            "file": f.file, "line": f.line,
        } for f in functions if (f.cls, f.name) in hot_keys
        }.values(), key=lambda e: e["symbol"])
        with open(args.manifest, "w") as out:
            json.dump({"hot_functions": entries}, out, indent=1)
            out.write("\n")
        print(f"manifest: {len(entries)} hot functions -> "
              f"{args.manifest}")

    n_hot = len({(f.cls, f.name) for f in roots + hot_decl_only})
    if n_hot < args.min_hot:
        print(f"error: found only {n_hot} SDBP_HOT_PATH functions "
              f"(expected >= {args.min_hot}); the annotation scan "
              f"looks broken", file=sys.stderr)
        return 1

    # Hot pack over the reachable closure.
    violations = []
    reached = hot_reachable(roots, by_name)
    for f, root_sym in reached.values():
        for v in hot_violations(f, devirt):
            v.root = root_sym
            violations.append(v)

    # Determinism pack over everything.
    env_impl = os.path.join("util", "env.cc")
    for sf in files:
        sanctioned = sf.path.endswith(env_impl)
        for f in sf.functions:
            if f.body:
                violations.extend(
                    det_violations(f, sanctioned_getenv=sanctioned))
        violations.extend(unordered_iteration_violations(sf))

    # Inline allows.
    allows_by_file = {sf.path: sf.allows for sf in files}
    def allowed(v):
        rules = allows_by_file.get(v.file, {}).get(v.line, set())
        return v.rule in rules or "*" in rules
    violations = [v for v in violations if not allowed(v)]
    violations.sort(key=lambda v: (v.file, v.line, v.rule))

    # Baseline.
    baseline = load_baseline(args.baseline)
    known = {baseline_key(e): e for e in baseline}
    fresh, matched = [], set()
    for v in violations:
        k = v.key()
        if k in known:
            matched.add(k)
        else:
            fresh.append(v)

    if args.update_baseline:
        entries = []
        seen = set()
        for v in violations:
            k = v.key()
            if k in seen:
                continue
            seen.add(k)
            entries.append({
                "rule": v.rule, "file": v.file, "symbol": v.symbol,
                "message": v.message,
                "reason": known.get(k, {}).get(
                    "reason", "TODO: justify this suppression"),
            })
        with open(args.baseline, "w") as out:
            json.dump({"entries": entries}, out, indent=1)
            out.write("\n")
        print(f"baseline: wrote {len(entries)} entries to "
              f"{args.baseline}")
        return 0

    stale = [e for e in baseline if baseline_key(e) not in matched]
    for e in stale:
        print(f"warning: stale baseline entry "
              f"[{e['rule']}] {e['file']} {e.get('symbol', '')}",
              file=sys.stderr)

    for v in fresh:
        via = f"  (reached from {v.root})" if v.root and \
            v.root != v.symbol else ""
        sym = f" in {v.symbol}" if v.symbol else ""
        print(f"{v.file}:{v.line}: [{v.rule}]{sym}: {v.message}{via}")

    n_base = len(violations) - len(fresh)
    print(f"sdbp-lint: {len(files)} files, {n_hot} hot functions, "
          f"{len(reached)} reachable from hot roots; "
          f"{len(fresh)} violations ({n_base} baselined)")
    return 1 if fresh else 0


if __name__ == "__main__":
    sys.exit(main())
