// Fixture: raw operator new on the hot path.  Expect hot-alloc.
#define SDBP_HOT_PATH

struct Node
{
    int value;
    Node *next;
};

struct List
{
    Node *head = nullptr;

    SDBP_HOT_PATH void
    push(int x)
    {
        head = new Node{x, head};
    }
};
