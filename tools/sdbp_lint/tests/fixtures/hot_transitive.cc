// Fixture: the violation sits two calls below the annotated root --
// exercises the call-graph walk.  Expect hot-alloc in Log::slowPath,
// reported as reached from Log::access.
#define SDBP_HOT_PATH
#include <vector>

struct Log
{
    std::vector<int> entries;

    void slowPath(int x);

    void
    helper(int x)
    {
        slowPath(x);
    }

    SDBP_HOT_PATH void
    access(int x)
    {
        helper(x);
    }
};

void
Log::slowPath(int x)
{
    entries.push_back(x);
}
