// Fixture: wall-clock read.  Expect det-wallclock.
#include <chrono>

unsigned long
timestamp()
{
    return static_cast<unsigned long>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}
