// Fixture: span emission on the hot path.  Expect hot-span -- but a
// free call named span() (std::span construction) must stay legal.
#define SDBP_HOT_PATH

namespace obs
{
struct SpanTracer
{
    static SpanTracer &global();
    int span(const char *cat, const char *name);
};
} // namespace obs

template <typename T> struct span
{
    span(T *p, unsigned n);
};

struct Engine
{
    SDBP_HOT_PATH int
    fetch(int *records, unsigned n)
    {
        span<int> batch(records, n); // free span(): fine
        return obs::SpanTracer::global().span("cell", "x");
    }
};
