// Fixture: virtual call whose target has a final-class override, so
// the sealed compositions devirtualize it; allowed at source level
// (the binary audit proves the sealed symbol compiles flat).
// Expect no violations.
#define SDBP_HOT_PATH

struct Policy
{
    virtual ~Policy() = default;
    virtual unsigned victim(unsigned set) = 0;
};

struct LruPolicy final : Policy
{
    unsigned
    victim(unsigned set) override
    {
        return set & 1u;
    }
};

struct Cache
{
    Policy *policy;

    SDBP_HOT_PATH unsigned
    evict(unsigned set)
    {
        return policy->victim(set);
    }
};
