// Fixture: atomic RMW stronger than relaxed on the hot path.
// Expect hot-atomic-order.
#define SDBP_HOT_PATH
#include <atomic>

struct Counter
{
    std::atomic<unsigned> n{0};

    SDBP_HOT_PATH void
    bump()
    {
        n.fetch_add(1, std::memory_order_seq_cst);
    }
};
