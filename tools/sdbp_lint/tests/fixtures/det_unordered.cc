// Fixture: output produced while iterating an unordered container --
// iteration order is implementation-defined, so the output is not
// reproducible.  Expect det-unordered-iter.
#include <iostream>
#include <unordered_map>

void
dump(const std::unordered_map<int, int> &stats)
{
    for (const auto &kv : stats) {
        std::cout << kv.first << "=" << kv.second << "\n";
    }
}
