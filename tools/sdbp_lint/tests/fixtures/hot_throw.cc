// Fixture: throw on the hot path.  Expect hot-throw.
#define SDBP_HOT_PATH
#include <stdexcept>

struct Table
{
    unsigned rows[16];

    SDBP_HOT_PATH unsigned
    confidence(unsigned i)
    {
        if (i >= 16)
            throw std::out_of_range("bad index");
        return rows[i];
    }
};
