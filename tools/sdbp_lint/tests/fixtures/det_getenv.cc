// Fixture: raw getenv outside the env:: wrappers.  Expect det-getenv.
#include <cstdlib>

const char *
threads()
{
    return std::getenv("SDBP_JOBS");
}
