// Fixture: virtual call on the hot path with no final override
// anywhere in the project -- cannot devirtualize.  Expect hot-virtual.
#define SDBP_HOT_PATH

struct Predictor
{
    virtual ~Predictor() = default;
    virtual bool lookup(unsigned set) = 0;
};

struct Cache
{
    Predictor *pred;

    SDBP_HOT_PATH bool
    access(unsigned set)
    {
        return pred->lookup(set);
    }
};
