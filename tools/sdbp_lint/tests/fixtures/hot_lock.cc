// Fixture: lock primitive on the hot path.  Expect hot-lock.
#define SDBP_HOT_PATH
#include <mutex>

struct Stats
{
    std::mutex m;
    unsigned hits = 0;

    SDBP_HOT_PATH void
    bump()
    {
        std::lock_guard<std::mutex> g(m);
        ++hits;
    }
};
