// Fixture: heap allocation on the hot path.  Expect hot-alloc.
#define SDBP_HOT_PATH
#include <vector>

struct Trace
{
    std::vector<int> log;

    SDBP_HOT_PATH void
    record(int x)
    {
        log.push_back(x);
    }
};
