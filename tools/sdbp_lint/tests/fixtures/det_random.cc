// Fixture: non-seeded randomness.  Expect det-random.
#include <cstdlib>

unsigned
jitter()
{
    return static_cast<unsigned>(rand()) % 16u;
}
