// Fixture: representative hot-path code that honours the whole
// contract -- index math, tag scans, branchless updates.  Expect
// zero violations (false-positive canary).
#define SDBP_HOT_PATH
#include <cstdint>
#include <vector>

struct Frame
{
    std::uint64_t tag = 0;
    bool valid = false;
};

class SetIndex final
{
  public:
    explicit SetIndex(std::uint32_t sets) : mask_(sets - 1) {}

    SDBP_HOT_PATH std::uint32_t
    index(std::uint64_t addr) const
    {
        return static_cast<std::uint32_t>(addr >> 6) & mask_;
    }

    SDBP_HOT_PATH int
    findWay(const std::vector<Frame> &frames,
            std::uint64_t tag) const
    {
        for (std::size_t w = 0; w < frames.size(); ++w) {
            if (frames[w].valid && frames[w].tag == tag)
                return static_cast<int>(w);
        }
        return -1;
    }

    SDBP_HOT_PATH std::uint64_t
    mix(std::uint64_t x) const
    {
        x ^= x >> 33;
        x *= 0xff51afd7ed558ccdULL;
        return x ^ (x >> 29);
    }

  private:
    std::uint32_t mask_;
};
