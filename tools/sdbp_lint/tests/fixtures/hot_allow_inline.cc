// Fixture: a violation suppressed by an inline allow pragma.
// Expect no violations.
#define SDBP_HOT_PATH
#include <vector>

struct Trace
{
    std::vector<int> log;

    SDBP_HOT_PATH void
    record(int x)
    {
        log.push_back(x); // sdbp-lint: allow(hot-alloc)
    }
};
