// Fixture: I/O on the hot path.  Expect hot-io.
#define SDBP_HOT_PATH
#include <cstdio>

struct Debug
{
    SDBP_HOT_PATH void
    trace(unsigned set)
    {
        printf("set=%u\n", set);
    }
};
