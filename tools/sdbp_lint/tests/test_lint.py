#!/usr/bin/env python3
"""Fixture tests for the sdbp_lint contract checker.

Each fixture under fixtures/ seeds exactly one class of violation (or
none); the test runs the real CLI on a directory containing just that
fixture and asserts the reported rule ids and the exit code.  The
clean fixtures double as false-positive canaries.
"""

import os
import re
import shutil
import subprocess
import sys
import tempfile
import unittest

HERE = os.path.dirname(os.path.abspath(__file__))
RUN_PY = os.path.join(HERE, "..", "run.py")
FIXTURES = os.path.join(HERE, "fixtures")

# fixture file -> set of expected rule ids (empty = must be clean)
EXPECT = {
    "hot_virtual.cc": {"hot-virtual"},
    "hot_virtual_final.cc": set(),
    "hot_alloc.cc": {"hot-alloc"},
    "hot_new.cc": {"hot-alloc"},
    "hot_throw.cc": {"hot-throw"},
    "hot_lock.cc": {"hot-lock"},
    "hot_atomic.cc": {"hot-atomic-order"},
    "hot_io.cc": {"hot-io"},
    "hot_transitive.cc": {"hot-alloc"},
    "hot_span.cc": {"hot-span"},
    "hot_allow_inline.cc": set(),
    "det_wallclock.cc": {"det-wallclock"},
    "det_random.cc": {"det-random"},
    "det_getenv.cc": {"det-getenv"},
    "det_unordered.cc": {"det-unordered-iter"},
    "clean.cc": set(),
}

RULE_LINE = re.compile(r"^\S+:\d+: \[([\w-]+)\]")


def run_lint(src_dir, extra=()):
    proc = subprocess.run(
        [sys.executable, RUN_PY, "--src", src_dir, *extra],
        capture_output=True, text=True)
    rules = {m.group(1) for m in
             (RULE_LINE.match(l) for l in proc.stdout.splitlines())
             if m}
    return proc, rules


class FixtureTests(unittest.TestCase):

    def run_fixture(self, name):
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copy(os.path.join(FIXTURES, name), tmp)
            return run_lint(tmp)

    def test_fixture_inventory_matches_expectations(self):
        on_disk = {f for f in os.listdir(FIXTURES)
                   if f.endswith(".cc")}
        self.assertEqual(on_disk, set(EXPECT))

    def test_each_fixture_flags_exactly_its_rule(self):
        for name, want in EXPECT.items():
            with self.subTest(fixture=name):
                proc, rules = self.run_fixture(name)
                self.assertEqual(
                    rules, want,
                    f"{name}: reported {sorted(rules)}, expected "
                    f"{sorted(want)}\n--- stdout ---\n{proc.stdout}"
                    f"\n--- stderr ---\n{proc.stderr}")
                self.assertEqual(
                    proc.returncode, 1 if want else 0,
                    f"{name}: exit {proc.returncode} with "
                    f"violations={sorted(want)}")

    def test_transitive_violation_names_its_hot_root(self):
        proc, _ = self.run_fixture("hot_transitive.cc")
        self.assertIn("reached from Log::access", proc.stdout)
        self.assertIn("Log::slowPath", proc.stdout)

    def test_min_hot_guards_against_silent_scan_failure(self):
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copy(os.path.join(FIXTURES, "det_getenv.cc"), tmp)
            proc, _ = run_lint(tmp, extra=("--min-hot", "1"))
            self.assertEqual(proc.returncode, 1)
            self.assertIn("annotation scan", proc.stderr)

    def test_manifest_lists_hot_functions(self):
        import json
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copy(os.path.join(FIXTURES, "clean.cc"), tmp)
            manifest = os.path.join(tmp, "manifest.json")
            proc, _ = run_lint(tmp, extra=("--manifest", manifest))
            self.assertEqual(proc.returncode, 0, proc.stdout)
            with open(manifest) as f:
                doc = json.load(f)
            symbols = {e["symbol"] for e in doc["hot_functions"]}
            self.assertEqual(symbols, {"SetIndex::index",
                                       "SetIndex::findWay",
                                       "SetIndex::mix"})

    def test_baseline_suppresses_and_update_round_trips(self):
        import json
        with tempfile.TemporaryDirectory() as tmp:
            shutil.copy(os.path.join(FIXTURES, "hot_alloc.cc"), tmp)
            baseline = os.path.join(tmp, "baseline.json")
            proc, _ = run_lint(
                tmp, extra=("--baseline", baseline,
                            "--update-baseline"))
            self.assertEqual(proc.returncode, 0, proc.stdout)
            with open(baseline) as f:
                entries = json.load(f)["entries"]
            self.assertEqual(len(entries), 1)
            self.assertEqual(entries[0]["rule"], "hot-alloc")
            # With the baseline in place the same tree is clean.
            proc, rules = run_lint(tmp,
                                   extra=("--baseline", baseline))
            self.assertEqual(proc.returncode, 0, proc.stdout)
            self.assertEqual(rules, set())


if __name__ == "__main__":
    unittest.main()
