"""sdbp_lint: the repo's hot-path and determinism contract checker.

Stdlib-only (no libclang in CI), so the C++ "parser" in cpp_model is a
pragmatic scanner: it strips comments and strings, tracks
namespace/class scopes by brace matching, and extracts function
definitions, virtual-method declarations and call sites.  That is
enough to walk the call graph from SDBP_HOT_PATH roots and to run the
repo-wide determinism rule pack; the paired binary audit
(tools/hotpath_audit.py) re-checks the hot-path promises on the real
post-LTO machine code, so the two levels cover each other's blind
spots.
"""
