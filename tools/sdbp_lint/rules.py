"""The two rule packs of the contract checker.

Hot pack (``hot-*``) -- evaluated on every function reachable from an
SDBP_HOT_PATH root through the intra-repo call graph.  These encode
the fast-path contract documented in src/util/hotpath.hh: no
non-devirtualizable virtual dispatch, no heap allocation, no throw,
no locks or non-relaxed atomics, no I/O.

Determinism pack (``det-*``) -- evaluated on every function in src/.
These encode the reproducibility hygiene rules: no wall-clock reads,
no unseeded randomness, no raw getenv outside the env:: wrappers, and
no output produced by iterating an unordered container.

Each violation is a Violation record; run.py matches them against the
checked-in baseline and inline ``// sdbp-lint: allow(rule)`` pragmas.
"""

import re
from dataclasses import dataclass

from cpp_model import extract_calls


@dataclass
class Violation:
    rule: str
    file: str
    line: int
    symbol: str     # qualified function name ("" for file scope)
    message: str
    root: str = ""  # hot root that reaches this site ("" for det-*)

    def key(self):
        """Baseline identity: stable across line-number churn."""
        return (self.rule, self.file, self.symbol, self.message)


# --- hot pack -------------------------------------------------------

_ALLOC_CALLS = frozenset({
    "malloc", "calloc", "realloc", "free", "strdup", "aligned_alloc",
    "make_unique", "make_shared", "allocate_shared",
})
_ALLOC_MEMBERS = frozenset({
    "push_back", "emplace_back", "emplace", "emplace_hint", "insert",
    "resize", "reserve", "append", "assign",
})
_LOCK_RE = re.compile(
    r"\b(?:std::)?(?:mutex|shared_mutex|recursive_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable)\b|"
    r"\bpthread_(?:mutex|rwlock|cond)_\w+|\bstd::lock\b")
_ATOMIC_ORDER_RE = re.compile(
    r"\bmemory_order(?:::|_)(?:seq_cst|acquire|release|acq_rel)\b")
_ATOMIC_RMW = frozenset({
    "fetch_add", "fetch_sub", "fetch_and", "fetch_or", "fetch_xor",
    "exchange", "compare_exchange_weak", "compare_exchange_strong",
})
_IO_CALLS = frozenset({
    "printf", "fprintf", "vfprintf", "puts", "fputs", "fwrite",
    "fread", "fopen", "fclose", "fflush", "scanf", "fscanf",
    "getline", "putchar", "fgetc", "fputc",
})
_IO_STREAM_RE = re.compile(
    r"\b(?:std::)?(?:cout|cerr|clog|cin)\b|"
    r"\b(?:std::)?[io]?fstream\b|\b(?:std::)?[io]fstream\b")
_MEMBER_PTR_CALL_RE = re.compile(r"(?:->\*|\.\*)\s*[\w(]")
# Span-emission surface: the SpanTracer type (construction, global(),
# emit()) or a *member* call named span() -- free `span(...)` stays
# legal because std::span construction appears on the hot path.
_SPAN_TOKEN_RE = re.compile(r"\bSpanTracer\b|\bSDBP_SPAN\w*\b")


def _line(fn, offset):
    return fn.body_line + fn.body.count("\n", 0, offset)


def hot_violations(fn, devirt):
    """Direct contract violations in one function body.

    `devirt` is the project-wide devirtualization oracle:
    devirt.is_final_somewhere(name) is True when some final class (or
    final method) provides `name`, making a virtual call to it
    devirtualizable by the sealed compositions -- those calls are
    allowed at source level and proven flat by the binary audit.
    """
    out = []

    def add(rule, offset, msg):
        out.append(Violation(rule=rule, file=fn.file,
                             line=_line(fn, offset),
                             symbol=fn.symbol, message=msg))

    for m in re.finditer(r"\bnew\b", fn.body):
        add("hot-alloc", m.start(), "operator new expression")
    for m in re.finditer(r"\bthrow\b(?!\s*\()", fn.body):
        add("hot-throw", m.start(), "throw expression")
    for m in _LOCK_RE.finditer(fn.body):
        add("hot-lock", m.start(), f"lock primitive '{m.group(0)}'")
    for m in _ATOMIC_ORDER_RE.finditer(fn.body):
        add("hot-atomic-order", m.start(),
            f"atomic ordering '{m.group(0)}' stronger than relaxed")
    for m in _IO_STREAM_RE.finditer(fn.body):
        add("hot-io", m.start(), f"I/O stream '{m.group(0)}'")
    for m in _MEMBER_PTR_CALL_RE.finditer(fn.body):
        add("hot-virtual", m.start(),
            "indirect call through member pointer")
    for m in _SPAN_TOKEN_RE.finditer(fn.body):
        add("hot-span", m.start(),
            f"span tracing '{m.group(0)}' (spans are cell/phase "
            f"granularity only)")

    for name, is_member, args, off in extract_calls(fn.body):
        if name in _ALLOC_CALLS:
            add("hot-alloc", off, f"call to '{name}'")
        elif is_member and name in _ALLOC_MEMBERS:
            add("hot-alloc", off,
                f"allocating container call '.{name}()'")
        elif is_member and name == "at":
            add("hot-throw", off, "throwing accessor '.at()'")
        elif name in _IO_CALLS:
            add("hot-io", off, f"call to '{name}'")
        elif is_member and name == "span":
            add("hot-span", off,
                "span emission '.span()' (spans are cell/phase "
                "granularity only)")
        elif is_member and name in _ATOMIC_RMW:
            if "memory_order_relaxed" not in args and \
                    "memory_order::relaxed" not in args:
                add("hot-atomic-order", off,
                    f"atomic '.{name}()' without relaxed ordering")
        elif is_member and devirt.is_virtual(name) and \
                not devirt.is_final_somewhere(name):
            add("hot-virtual", off,
                f"virtual call '.{name}()' with no final override "
                f"anywhere (cannot devirtualize)")
    return out


# --- determinism pack -----------------------------------------------

_WALLCLOCK_RE = re.compile(
    r"\b(?:system_clock|steady_clock|high_resolution_clock)\s*::\s*"
    r"now\b|(?<![\w.>])(?:time|clock)\s*\(|\bgettimeofday\b|"
    r"\blocaltime\b|\bgmtime\b|\bstrftime\b")
_RANDOM_RE = re.compile(
    r"(?<![\w.>])(?:rand|srand|rand_r)\s*\(|\brandom_device\b|"
    r"\bmt19937(?:_64)?\b|\bdefault_random_engine\b")
_GETENV_RE = re.compile(r"(?<![\w.>])(?:std::)?getenv\s*\(")
_UNORDERED_DECL_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\s*<[^;{}]*?>\s*"
    r"(?:&\s*)?(\w+)\s*[;,={)]")
_RANGE_FOR_RE = re.compile(r"\bfor\s*\(([^;()]*?):([^;]*?)\)\s*\{")
_OUTPUT_RE = re.compile(r"<<|\bprintf|\bfprintf|\.write\s*\(")


def det_violations(fn, sanctioned_getenv=False):
    """Determinism violations in one function body."""
    out = []

    def add(rule, offset, msg):
        out.append(Violation(rule=rule, file=fn.file,
                             line=_line(fn, offset),
                             symbol=fn.symbol, message=msg))

    for m in _WALLCLOCK_RE.finditer(fn.body):
        add("det-wallclock", m.start(),
            f"wall-clock read '{m.group(0).strip()}'")
    for m in _RANDOM_RE.finditer(fn.body):
        add("det-random", m.start(),
            f"non-seeded randomness '{m.group(0).strip()}' "
            f"(use sdbp::Rng)")
    if not sanctioned_getenv:
        for m in _GETENV_RE.finditer(fn.body):
            add("det-getenv", m.start(),
                "raw getenv (use the env:: helpers)")
    return out


def unordered_iteration_violations(sf):
    """det-unordered-iter: a range-for over a declared unordered
    container whose loop body produces output.  Iteration order of
    unordered containers is implementation-defined, so any output
    derived from it breaks run-to-run reproducibility."""
    out = []
    names = set(_UNORDERED_DECL_RE.findall(sf.stripped))
    if not names:
        return out
    for m in _RANGE_FOR_RE.finditer(sf.stripped):
        range_expr = m.group(2)
        if not any(re.search(rf"\b{re.escape(n)}\b", range_expr)
                   for n in names):
            continue
        brace = sf.stripped.index("{", m.end() - 1)
        depth, i = 0, brace
        while i < len(sf.stripped):
            if sf.stripped[i] == "{":
                depth += 1
            elif sf.stripped[i] == "}":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        body = sf.stripped[brace:i]
        if _OUTPUT_RE.search(body):
            out.append(Violation(
                rule="det-unordered-iter", file=sf.path,
                line=1 + sf.stripped.count("\n", 0, m.start()),
                symbol="",
                message=f"output produced while iterating unordered "
                        f"container '{range_expr.strip()}'"))
    return out


ALL_RULES = {
    "hot-alloc": "heap allocation on the hot path",
    "hot-virtual": "non-devirtualizable virtual dispatch on the hot "
                   "path",
    "hot-throw": "throw (or throwing accessor) on the hot path",
    "hot-lock": "lock primitive on the hot path",
    "hot-atomic-order": "atomic operation stronger than relaxed on "
                        "the hot path",
    "hot-io": "I/O on the hot path",
    "hot-span": "span emission on the hot path (spans are cell/phase "
                "granularity only)",
    "det-wallclock": "wall-clock read outside the profiler",
    "det-random": "non-seeded randomness (use sdbp::Rng)",
    "det-getenv": "raw getenv outside the env:: wrappers",
    "det-unordered-iter": "output from unordered-container iteration",
}
