#!/usr/bin/env python3
"""Binary-level audit of the SDBP_HOT_PATH contract.

Usage:
    hotpath_audit.py --binary build/tools/sdbp_inspect \\
        [--binary build/bench/micro_ops] \\
        --manifest build/hotpath_manifest.json \\
        [--policy tools/hotpath_audit_policy.json] [--json out.json]

Disassembles each Release binary with objdump, finds the audited
symbols (the sealed BasicHierarchy/BasicCache compositions plus every
symbol matching the SDBP_HOT_PATH manifest emitted by
tools/sdbp_lint/run.py), and walks the direct-call closure through
sdbp:: code.  It fails if any audited symbol:

  * performs an indirect call (vtable dispatch the sealed engine was
    supposed to devirtualize, or a std::function),
  * calls an allocation routine (operator new, malloc, the libstdc++
    _M_allocate/_M_realloc/_M_rehash family),
  * raises (__cxa_throw / std::__throw_*),
  * takes a lock (pthread_mutex_*, __gthread, __cxa_guard), or
  * performs I/O (fwrite/printf/std::ostream).

Known cold-branch edges are waived individually in the policy file --
each waiver names a symbol pattern, violation class, callee pattern,
a maximum number of sites and a one-line reason, so a new `new` in a
hot function still fails even when an old one is waived.  The policy
also carries a self-check: the type-erased virtual-path symbol must
contain at least one indirect call, proving the detector works.

Source-level lint (tools/sdbp_lint) and this audit are two halves of
one checker: the lint sees intent before inlining; this sees the
post-LTO machine code that actually runs.  Stdlib + binutils only.
"""

import argparse
import json
import os
import re
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from _common import load_json, run_process  # noqa: E402

SYMBOL_RE = re.compile(r"^[0-9a-f]+ <(.+)>:$")
CALL_RE = re.compile(r"\b(?:call|callq)\s+[0-9a-f]+\s+<([^>]+)>")
INDIRECT_CALL_RE = re.compile(r"\b(?:call|callq)\s+\*")
# Indirect tail-jump through a base register (vtable thunk shape).
# Jump tables use the indexed form `jmp *0x...(,%reg,8)` and are not
# dispatch, so a bare base register is required.
INDIRECT_JMP_RE = re.compile(r"\bjmp[a-z]*\s+\*(?:0x[0-9a-f]+)?"
                             r"\(%r[a-z0-9]+\)")
TAIL_JMP_RE = re.compile(r"\bjmp[a-z]*\s+[0-9a-f]+\s+<([^>]+)>")

CLASSES = {
    "alloc": re.compile(
        r"operator new|operator delete|\bmalloc\b|\bcalloc\b|"
        r"\brealloc\b|\bfree\b|_M_allocate|_M_realloc|_M_rehash|"
        r"_M_insert|_M_emplace|_M_create_node|_M_default_append|"
        r"_M_assign|push_back|emplace_back|::reserve\(|::resize\("),
    "throw": re.compile(
        r"__cxa_throw|__cxa_allocate_exception|__cxa_rethrow|"
        r"__throw_|::__throw|_ZSt[0-9]+__throw"),
    "mutex": re.compile(
        r"pthread_mutex|pthread_rwlock|pthread_cond|__gthread|"
        r"__cxa_guard|std::mutex|std::unique_lock|std::lock_guard|"
        r"std::condition_variable"),
    "io": re.compile(
        r"\bfwrite\b|\bfputs\b|\bfputc\b|\bprintf\b|\bfprintf\b|"
        r"\bputs\b|\bfopen\b|\bfflush\b|basic_ostream|basic_ofstream|"
        r"basic_filebuf|\bwrite\b.*\bunistd\b"),
}


def clean_symbol(sym):
    """Strip clone suffixes and @plt decoration."""
    sym = re.sub(r"@plt$", "", sym)
    sym = re.sub(r"\s*\[clone[^\]]*\]$", "", sym)
    return sym


def parse_disassembly(text):
    """Map demangled symbol -> list of instruction lines."""
    blocks = {}
    current = None
    for line in text.splitlines():
        m = SYMBOL_RE.match(line)
        if m:
            current = clean_symbol(m.group(1))
            blocks.setdefault(current, [])
        elif current is not None and line.strip():
            blocks[current].append(line)
    return blocks


def manifest_patterns(manifest):
    """Compile symbol regexes from the lint's hot-function manifest.

    A manifest entry {class: "BasicCache", name: "access"} matches any
    template instantiation sdbp::BasicCache<...>::access(...), and a
    free function {class: "", name: "mix64"} matches sdbp::mix64(...).
    """
    pats = []
    for e in manifest.get("hot_functions", []):
        cls, name = e.get("class", ""), e["name"]
        if cls:
            pats.append(re.compile(
                rf"sdbp::(?:\w+::)*{re.escape(cls)}(?:<.*>)?::"
                rf"{re.escape(name)}\("))
        else:
            pats.append(re.compile(
                rf"sdbp::(?:\w+::)*{re.escape(name)}\("))
    return pats


def find_roots(blocks, root_res, manifest_pats, exclude_res):
    roots = set()
    for sym in blocks:
        if any(x.search(sym) for x in exclude_res):
            continue
        if any(r.search(sym) for r in root_res) or \
                any(p.search(sym) for p in manifest_pats):
            roots.add(sym)
    return roots


def call_edges(lines):
    """Yield ("direct", callee) / ("indirect", instruction) edges."""
    for line in lines:
        m = CALL_RE.search(line)
        if m:
            yield "direct", clean_symbol(m.group(1))
            continue
        if INDIRECT_CALL_RE.search(line) or \
                INDIRECT_JMP_RE.search(line):
            yield "indirect", line.strip()
            continue
        m = TAIL_JMP_RE.search(line)
        if m:
            callee = clean_symbol(m.group(1))
            # A tail jump to another function is a call for audit
            # purposes; local branches carry a +0x offset.
            if "+0x" not in m.group(1):
                yield "direct", callee


def classify(callee):
    for cls, rx in CLASSES.items():
        if rx.search(callee):
            return cls
    return None


def audit_binary(path, root_res, manifest_pats, exclude_res,
                 waivers):
    """Return (violations, stats) for one binary."""
    text = run_process(["objdump", "-d", "-C", path])
    blocks = parse_disassembly(text)
    roots = find_roots(blocks, root_res, manifest_pats, exclude_res)
    if not roots:
        return [{"binary": path, "symbol": "", "class": "audit",
                 "callee": "", "detail": "no audited symbols found "
                 "(roots/manifest match nothing)"}], {}

    audited, worklist = set(), sorted(roots)
    violations = []
    while worklist:
        sym = worklist.pop()
        if sym in audited:
            continue
        audited.add(sym)
        for kind, target in call_edges(blocks.get(sym, [])):
            if kind == "indirect":
                violations.append({
                    "binary": path, "symbol": sym,
                    "class": "indirect", "callee": target,
                    "detail": "indirect call/jump (virtual dispatch "
                              "or std::function)"})
                continue
            if target.startswith("sdbp::") and target in blocks:
                if target not in audited and \
                        not any(x.search(target)
                                for x in exclude_res):
                    worklist.append(target)
                continue
            cls = classify(target)
            if cls:
                violations.append({
                    "binary": path, "symbol": sym, "class": cls,
                    "callee": target,
                    "detail": f"{cls} call from audited symbol"})

    violations = apply_waivers(violations, waivers)
    stats = {"binary": path, "roots": len(roots),
             "audited": len(audited)}
    return violations, stats


def apply_waivers(violations, waivers):
    """Drop violations covered by a policy waiver; enforce max_sites."""
    remaining = []
    counts = [0] * len(waivers)
    for v in violations:
        for i, w in enumerate(waivers):
            if w["class"] != v["class"] and w["class"] != "*":
                continue
            if not re.search(w["symbol"], v["symbol"]):
                continue
            if not re.search(w.get("callee", ""), v["callee"] or ""):
                continue
            counts[i] += 1
            if counts[i] <= w.get("max_sites", 1):
                v["waived_by"] = w["reason"]
                break
        if "waived_by" not in v:
            remaining.append(v)
    return remaining


def self_check(binaries, policy):
    """The virtual-path symbol must show indirect calls -- otherwise
    the detector itself is broken and a green audit means nothing."""
    check = policy.get("self_check")
    if not check:
        return []
    rx = re.compile(check["symbol"])
    found = 0
    for path in binaries:
        text = run_process(["objdump", "-d", "-C", path])
        for sym, lines in parse_disassembly(text).items():
            if rx.search(sym):
                found += sum(1 for k, _t in call_edges(lines)
                             if k == "indirect")
    if found < check.get("min_indirect", 1):
        return [{"binary": "*", "symbol": check["symbol"],
                 "class": "audit", "callee": "",
                 "detail": f"self-check failed: expected >= "
                           f"{check.get('min_indirect', 1)} indirect "
                           f"calls in the virtual-path symbol, found "
                           f"{found} -- the indirect-call detector "
                           f"is not seeing dispatch"}]
    return []


def main(argv=None):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--binary", action="append", required=True,
                    help="Release binary to audit (repeatable)")
    ap.add_argument("--manifest", required=True,
                    help="hot-function manifest from sdbp_lint "
                         "(run.py --manifest)")
    ap.add_argument("--policy",
                    default=os.path.join(
                        os.path.dirname(os.path.abspath(__file__)),
                        "hotpath_audit_policy.json"),
                    help="audit policy JSON (roots, waivers, "
                         "self-check)")
    ap.add_argument("--json", help="write the full report here")
    args = ap.parse_args(argv)

    policy = load_json(args.policy)
    manifest = load_json(args.manifest)
    root_res = [re.compile(p) for p in policy.get("root_patterns", [])]
    manifest_pats = manifest_patterns(manifest)
    exclude_res = [re.compile(p)
                   for p in policy.get("exclude_patterns", [])]
    waivers = policy.get("waivers", [])

    all_violations, all_stats = [], []
    for path in args.binary:
        if not os.path.exists(path):
            sys.exit(f"error: binary not found: {path}")
        v, s = audit_binary(path, root_res, manifest_pats,
                            exclude_res, waivers)
        all_violations.extend(v)
        all_stats.append(s)

    all_violations.extend(self_check(args.binary, policy))

    for v in all_violations:
        print(f"FAIL [{v['class']}] {v['symbol'] or v['binary']}\n"
              f"     -> {v['callee'] or v['detail']}")
        if v["callee"]:
            print(f"     {v['detail']}")

    for s in all_stats:
        print(f"audit: {s.get('binary')}: {s.get('roots', 0)} root "
              f"symbols, {s.get('audited', 0)} audited via direct-"
              f"call closure")

    if args.json:
        with open(args.json, "w") as out:
            json.dump({"violations": all_violations,
                       "stats": all_stats}, out, indent=1)
            out.write("\n")

    if all_violations:
        print(f"hotpath-audit: {len(all_violations)} violation(s)")
        return 1
    print("hotpath-audit: clean -- every audited symbol is flat "
          "(no indirect dispatch, allocation, throw, lock or I/O)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
