/**
 * @file
 * sdbp_inspect: run one instrumented simulation and inspect its
 * observability artifacts from the command line.
 *
 *   sdbp_inspect --benchmark hmmer --policy Sampler \
 *                --json run.json --csv timeline.csv
 *
 * Prints a human-readable summary (headline metrics, predictor
 * confusion matrix, per-interval timeline, wall-clock profile) and
 * optionally exports the machine-readable artifacts: the
 * `sdbp.run_artifacts/1` JSON, the derived timeline CSV, and the
 * event-trace JSONL.
 *
 * --benchmark and --policy accept comma-separated lists; a
 * multi-cell selection runs the whole grid in parallel (SDBP_JOBS /
 * --jobs workers) through the sweep engine and prints one summary
 * row per cell, with artifact paths derived per cell.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/artifacts.hh"
#include "obs/span_tracer.hh"
#include "sim/runner.hh"
#include "sim/sweep.hh"
#include "sim/worker.hh"
#include "trace/champsim.hh"
#include "trace/spec_profiles.hh"
#include "trace/workload.hh"
#include "util/file.hh"
#include "util/stats.hh"
#include "util/table.hh"

namespace
{

using namespace sdbp;

int
usage(const char *prog)
{
    std::cout
        << "usage: " << prog << " [options]\n"
        << "\n"
        << "Run one instrumented single-core simulation and inspect "
           "its artifacts.\n"
        << "\n"
        << "options:\n"
        << "  --benchmark <names>  SPEC benchmark (default "
           "456.hmmer); the\n"
        << "                       numeric prefix is optional "
           "(\"hmmer\" works);\n"
        << "                       comma-separated lists sweep a "
           "grid\n"
        << "  --policy <names>     LLC policy (default Sampler); "
           "case-insensitive,\n"
        << "                       spaces/dashes/underscores "
           "interchangeable;\n"
        << "                       comma-separated lists sweep a "
           "grid\n"
        << "  --jobs <n>           sweep threads (default SDBP_JOBS "
           "or all cores)\n"
        << "  --workers <n>        crash-isolated worker *processes* "
           "instead of\n"
        << "                       threads (default SDBP_WORKERS or "
           "0 = in-process);\n"
        << "                       requires --manifest\n"
        << "  --retries <n>        extra attempts per failing sweep "
           "cell\n"
        << "                       (default SDBP_RETRIES or 0)\n"
        << "  --manifest <path>    checkpoint each cell outcome to "
           "this JSON\n"
        << "  --manifest-info <f>  print the per-cell state of a "
           "sweep manifest\n"
        << "                       (status, lease pid/generation, "
           "crash detail)\n"
        << "                       and exit; works on in-flight "
           "sweeps\n"
        << "  --resume             restore completed cells from the "
           "manifest\n"
        << "                       instead of re-running them\n"
        << "  --fault-rate <n>     inject n soft errors per million "
           "predictor\n"
        << "                       consultations (0..1000000)\n"
        << "  --fault-seed <n>     seed of the fault injector\n"
        << "  --warmup <n>         warm-up instructions\n"
        << "  --instructions <n>   measured instructions\n"
        << "  --interval <n>       snapshot period in instructions\n"
        << "  --trace <file>       simulate this memory trace (native "
           "or ChampSim\n"
        << "                       format; .gz/.xz transparently "
           "decompressed)\n"
        << "                       instead of a synthetic benchmark\n"
        << "  --record <out>       record the benchmark's reference "
           "stream as a\n"
        << "                       ChampSim trace covering the run's "
           "instruction\n"
        << "                       budget, then exit\n"
        << "  --intervals <n>      interval-selection: interval "
           "length in\n"
        << "                       instructions (with --select)\n"
        << "  --select <k>         interval-selection: simulate k "
           "weighted\n"
        << "                       representative intervals of the "
           "trace\n"
        << "  --json <path>        write the run-artifact JSON\n"
        << "  --csv <path>         write the derived timeline CSV\n"
        << "  --events <path>      stream trace events as JSONL\n"
        << "  --spans <file>       summarize a sdbp.trace_spans/1 "
           "JSON (slowest\n"
        << "                       cells, retries, per-phase "
           "breakdown) and exit\n"
        << "  --spans-out <path>   export this invocation's spans "
           "there\n"
        << "                       (implies span tracing on)\n"
        << "  --stats              dump every final stat, not just "
           "the summary\n"
        << "  --list-benchmarks    print the known benchmarks and "
           "exit\n"
        << "  --list-policies      print the known policies and "
           "exit\n"
        << "  --help               this text\n"
        << "\n"
        << "The same artifacts are available from any run via the\n"
        << "SDBP_STATS_JSON / SDBP_INTERVAL environment variables.\n";
    return 2;
}

/** Accept "456.hmmer" or just "hmmer". */
std::optional<std::string>
resolveBenchmark(const std::string &name)
{
    for (const auto &full : allSpecBenchmarks()) {
        if (full == name)
            return full;
        const auto dot = full.find('.');
        if (dot != std::string::npos && full.substr(dot + 1) == name)
            return full;
    }
    return std::nullopt;
}

std::vector<std::string>
splitList(const std::string &text)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        const auto comma = text.find(',', start);
        const auto end =
            comma == std::string::npos ? text.size() : comma;
        if (end > start)
            out.push_back(text.substr(start, end - start));
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

void
printSummary(const obs::RunArtifacts &art)
{
    const auto &snap = art.finalSnapshot;
    const double insts =
        snap.value("sys.instructions",
                   static_cast<double>(art.measureInstructions));

    TextTable t({"Metric", "Value"});
    t.row().cell("benchmark").cell(art.benchmark);
    t.row().cell("policy").cell(art.policy);
    t.row().cell("instructions (warmup+measure)")
        .cell(std::to_string(art.warmupInstructions) + "+" +
              std::to_string(art.measureInstructions));
    if (snap.find("core0.cycles")) {
        const double cycles = snap.value("core0.cycles");
        t.row().cell("IPC").cell(
            formatDouble(cycles > 0 ? insts / cycles : 0, 3));
    }
    if (snap.find("llc.demand_misses")) {
        const double misses = snap.value("llc.demand_misses");
        t.row().cell("LLC MPKI").cell(formatDouble(
            insts > 0 ? 1000.0 * misses / insts : 0, 3));
        t.row().cell("LLC demand accesses").cell(
            std::to_string(snap.counter("llc.demand_accesses")));
        t.row().cell("LLC demand misses").cell(
            std::to_string(snap.counter("llc.demand_misses")));
        t.row().cell("LLC bypasses").cell(
            std::to_string(snap.counter("llc.bypasses")));
        t.row().cell("LLC evictions").cell(
            std::to_string(snap.counter("llc.evictions")));
    }
    if (snap.find("llc.efficiency"))
        t.row().cell("LLC efficiency").cell(
            formatPercent(snap.value("llc.efficiency"), 1));
    if (snap.find("dbrb.pred.storage_bits"))
        t.row().cell("predictor storage (KB)").cell(formatDouble(
            snap.value("dbrb.pred.storage_bits") / 8192.0, 1));
    t.print(std::cout);

    if (art.hasConfusion) {
        const auto &c = art.confusion;
        std::cout << "\nPrediction confusion matrix (hits and "
                     "evictions classified):\n";
        TextTable ct({"", "observed dead", "observed live"});
        ct.row().cell("predicted dead")
            .cell(std::to_string(c.deadEvicted) + " (TP)")
            .cell(std::to_string(c.deadHit) + " (FP)");
        ct.row().cell("predicted live")
            .cell(std::to_string(c.liveEvicted) + " (FN)")
            .cell(std::to_string(c.liveHit) + " (TN)");
        ct.print(std::cout);
        std::cout << "accuracy " << formatPercent(c.accuracy(), 1)
                  << ", false discovery rate "
                  << formatPercent(c.falseDiscoveryRate(), 1) << "\n";
    }

    if (art.intervals.size() > 1 && !art.series.empty()) {
        std::cout << "\nTimeline (" << art.intervals.size() - 1
                  << " intervals of " << art.intervalInstructions
                  << " instructions):\n";
        std::vector<std::string> headers = {"end tick"};
        for (const auto &s : art.series)
            headers.push_back(s.name);
        TextTable tt(headers);
        const std::size_t n = art.intervals.size() - 1;
        for (std::size_t i = 0; i < n; ++i) {
            auto &row = tt.row().cell(
                std::to_string(art.intervals[i + 1].tick));
            for (const auto &s : art.series)
                row.cell(i < s.values.size()
                             ? formatDouble(s.values[i], 3)
                             : "-");
        }
        tt.print(std::cout);
    }

    if (!art.profile.empty()) {
        std::cout << "\nWall-clock profile:\n";
        TextTable pt({"scope", "seconds", "events", "events/sec"});
        for (const auto &s : art.profile)
            pt.row().cell(s.name)
                .cell(formatDouble(s.seconds, 3))
                .cell(std::to_string(s.events))
                .cell(formatDouble(s.eventsPerSec(), 0));
        pt.print(std::cout);
    }

    if (art.traceEventsRecorded || art.traceEventsDropped)
        std::cout << "\nTrace: " << art.traceEventsRecorded
                  << " events recorded, " << art.traceEventsDropped
                  << " dropped (ring full)\n";
}

/** One trace event, as far as the spans summary cares. */
struct SpanRow
{
    std::string name;
    std::string cat;
    double durUs = 0;
    std::uint64_t attempts = 0;
    bool failed = false;
    bool timedOut = false;
    bool resumed = false;
    bool skipped = false;
};

/**
 * `--spans <file>`: load a sdbp.trace_spans/1 document and print the
 * operator's view — slowest cells, retry/failure counts, and where
 * the wall clock went per phase.
 */
int
summarizeSpans(const std::string &path)
{
    bool ok = false;
    const std::string text = util::readFile(path, &ok);
    if (!ok) {
        std::cerr << "error: cannot read " << path << "\n";
        return 1;
    }
    std::string parse_err;
    const auto doc = obs::JsonValue::parse(text, &parse_err);
    if (!doc) {
        std::cerr << "error: " << path << ": " << parse_err << "\n";
        return 1;
    }
    const obs::JsonValue *schema = doc->find("schema");
    if (!schema || schema->asString() != "sdbp.trace_spans/1")
        std::cerr << "warning: " << path
                  << " does not declare schema sdbp.trace_spans/1; "
                     "summarizing anyway\n";
    const obs::JsonValue *events = doc->find("traceEvents");
    if (!events || !events->isArray()) {
        std::cerr << "error: " << path << " has no traceEvents\n";
        return 1;
    }

    std::vector<SpanRow> cells;
    // Phase name -> (total µs, count); ordered for stable output.
    std::map<std::string, std::pair<double, std::uint64_t>> phases;
    for (std::size_t i = 0; i < events->size(); ++i) {
        const obs::JsonValue &ev = events->at(i);
        SpanRow row;
        if (const auto *v = ev.find("name"))
            row.name = v->asString();
        if (const auto *v = ev.find("cat"))
            row.cat = v->asString();
        if (const auto *v = ev.find("dur"))
            row.durUs = v->asNumber();
        if (const auto *args = ev.find("args")) {
            if (const auto *v = args->find("attempts"))
                row.attempts = v->asUInt();
            if (const auto *v = args->find("failed"))
                row.failed = v->asBool();
            if (const auto *v = args->find("timed_out"))
                row.timedOut = v->asBool();
            if (const auto *v = args->find("resumed"))
                row.resumed = v->asBool();
            if (const auto *v = args->find("skipped"))
                row.skipped = v->asBool();
        }
        if (row.cat == "cell") {
            cells.push_back(std::move(row));
        } else {
            auto &[us, count] = phases[row.cat + ":" + row.name];
            us += row.durUs;
            ++count;
        }
    }

    std::cout << "Span trace " << path << ": " << events->size()
              << " spans";
    if (const auto *v = doc->find("spans_dropped");
        v && v->asUInt() > 0)
        std::cout << " (" << v->asUInt() << " dropped: buffer full)";
    std::cout << "\n\n";

    if (!cells.empty()) {
        std::uint64_t failed = 0, timed_out = 0, resumed = 0,
                      skipped = 0, retries = 0;
        for (const auto &c : cells) {
            failed += c.failed ? 1 : 0;
            timed_out += c.timedOut ? 1 : 0;
            resumed += c.resumed ? 1 : 0;
            skipped += c.skipped ? 1 : 0;
            retries += c.attempts > 1 ? c.attempts - 1 : 0;
        }
        std::cout << cells.size() << " cell(s): " << failed
                  << " failed (" << timed_out << " timed out), "
                  << retries << " retr" << (retries == 1 ? "y" : "ies")
                  << ", " << resumed << " resumed, " << skipped
                  << " skipped\n\n";

        std::sort(cells.begin(), cells.end(),
                  [](const SpanRow &a, const SpanRow &b) {
                      return a.durUs > b.durUs;
                  });
        const std::size_t top = std::min<std::size_t>(cells.size(), 10);
        std::cout << "Slowest " << top << " cell(s):\n";
        TextTable ct({"Cell", "Wall ms", "Attempts", "Flags"});
        for (std::size_t i = 0; i < top; ++i) {
            const SpanRow &c = cells[i];
            std::string flags;
            auto flag = [&flags](const char *f) {
                flags += flags.empty() ? f : std::string(",") + f;
            };
            if (c.failed)
                flag(c.timedOut ? "timeout" : "failed");
            if (c.resumed)
                flag("resumed");
            if (c.skipped)
                flag("skipped");
            ct.row()
                .cell(c.name)
                .cell(c.durUs / 1000.0, 1)
                .cell(std::to_string(c.attempts))
                .cell(flags.empty() ? "-" : flags);
        }
        ct.print(std::cout);
        std::cout << "\n";
    }

    if (!phases.empty()) {
        double total_us = 0;
        for (const auto &[name, acc] : phases)
            total_us += acc.first;
        std::cout << "Per-phase breakdown (non-cell spans):\n";
        TextTable pt({"Span", "Count", "Total s", "Share"});
        for (const auto &[name, acc] : phases)
            pt.row()
                .cell(name)
                .cell(std::to_string(acc.second))
                .cell(acc.first / 1e6, 3)
                .cell(formatPercent(
                    total_us > 0 ? acc.first / total_us : 0, 1));
        pt.print(std::cout);
    }
    return 0;
}

/**
 * `--manifest-info <file>`: print the per-cell state of a sweep
 * manifest — the operator's view of an in-flight (or crashed)
 * multi-process sweep.  Shows each cell's status, the live lease
 * (worker pid, generation, heartbeat age) for Leased cells, and the
 * structured crash detail (signal, attempts) for Failed ones.
 *
 * Exit status: 0 when every cell completed, 1 when any cell failed
 * or was skipped, 3 while the sweep is still in flight (pending or
 * leased cells remain), 2 on a malformed file.
 */
int
summarizeManifest(const std::string &path)
{
    bool ok = false;
    const std::string text = util::readFile(path, &ok);
    if (!ok) {
        std::cerr << "error: cannot read " << path << "\n";
        return 2;
    }
    std::string parse_err;
    const auto doc = obs::JsonValue::parse(text, &parse_err);
    if (!doc) {
        std::cerr << "error: " << path << ": " << parse_err << "\n";
        return 2;
    }
    const obs::JsonValue *cells = doc->find("cells");
    if (!cells || !cells->isArray()) {
        std::cerr << "error: " << path
                  << " is not a sweep manifest (no cells array)\n";
        return 2;
    }

    auto u64 = [](const obs::JsonValue &v, const char *key) {
        const obs::JsonValue *f = v.find(key);
        return f ? f->asUInt() : std::uint64_t{0};
    };
    auto str = [](const obs::JsonValue &v, const char *key) {
        const obs::JsonValue *f = v.find(key);
        return f ? f->asString() : std::string();
    };

    std::uint64_t schema = u64(*doc, "schema");
    std::cout << "Sweep manifest " << path << " (schema v" << schema
              << ", kind " << str(*doc, "kind") << "): "
              << cells->size() << " cell(s)\n\n";

    const std::uint64_t now_ms = util::monotonicMs();
    std::size_t completed = 0, failed = 0, leased = 0, pending = 0,
                skipped = 0, crashed = 0;
    TextTable t({"Cell", "Status", "Att", "Pid", "Gen", "Hb age",
                 "Detail"});
    for (std::size_t i = 0; i < cells->size(); ++i) {
        const obs::JsonValue &c = cells->at(i);
        const std::string status = str(c, "status");
        const obs::JsonValue *lease = c.find("lease");
        std::string pid = "-", hb_age = "-";
        if (lease) {
            ++leased;
            pid = std::to_string(u64(*lease, "pid"));
            const std::uint64_t hb = u64(*lease, "heartbeat_ms");
            hb_age = hb && hb <= now_ms
                         ? formatDouble((now_ms - hb) / 1000.0, 1) +
                               " s"
                         : "?";
        } else if (const std::uint64_t wp = u64(c, "worker_pid")) {
            pid = std::to_string(wp);
        }
        std::string detail;
        if (status == "completed") {
            ++completed;
        } else if (status == "failed") {
            ++failed;
            if (c.find("crashed")) {
                ++crashed;
                detail = "crashed, signal " +
                         std::to_string(u64(c, "signal")) + ": ";
            }
            detail += str(c, "error");
        } else if (status == "skipped") {
            ++skipped;
        } else if (status == "pending") {
            ++pending;
        }
        const std::uint64_t gen = u64(c, "lease_generation");
        const std::uint64_t att = u64(c, "attempts");
        t.row()
            .cell(str(c, "run") + "/" + str(c, "policy"))
            .cell(status)
            .cell(att ? std::to_string(att) : "-")
            .cell(pid)
            .cell(gen ? std::to_string(gen) : "-")
            .cell(hb_age)
            .cell(detail.empty() ? "-" : detail);
    }
    t.print(std::cout);
    std::cout << "\n" << completed << " completed, " << failed
              << " failed (" << crashed << " crashed), " << leased
              << " leased, " << pending << " pending, " << skipped
              << " skipped\n";
    if (pending > 0 || leased > 0)
        return 3;
    return failed > 0 || skipped > 0 ? 1 : 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sweep::maybeWorkerMain(argc, argv);
    std::string benchmark = "456.hmmer";
    std::string policy_name = "Sampler";
    RunConfig cfg = RunConfig::singleCore();
    cfg.obs.collect = true;
    bool dump_stats = false;
    std::string spans_file;
    std::string spans_out;
    std::string manifest_info;
    std::string trace_file;
    std::string record_out;
    sweep::SweepOptions opts = sweep::SweepOptions::fromEnvironment();

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::cerr << "error: " << arg
                          << " requires an argument\n";
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--benchmark" || arg == "-b") {
            benchmark = next();
        } else if (arg == "--policy" || arg == "-p") {
            policy_name = next();
        } else if (arg == "--jobs" || arg == "-j") {
            opts.jobs = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
            if (opts.jobs == 0) {
                std::cerr << "error: --jobs needs a positive count\n";
                return 2;
            }
        } else if (arg == "--workers" || arg == "-w") {
            opts.workers = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--retries") {
            opts.retries = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--manifest") {
            opts.manifestPath = next();
        } else if (arg == "--manifest-info") {
            manifest_info = next();
        } else if (arg == "--resume") {
            opts.resume = true;
        } else if (arg == "--fault-rate") {
            cfg.policy.dbrb.fault.faultsPerMillion =
                std::strtoull(next(), nullptr, 10);
            if (cfg.policy.dbrb.fault.faultsPerMillion > 1'000'000) {
                std::cerr << "error: --fault-rate must be in "
                             "[0, 1000000]\n";
                return 2;
            }
        } else if (arg == "--fault-seed") {
            cfg.policy.dbrb.fault.seed =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--warmup") {
            cfg.warmupInstructions =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--instructions" || arg == "-n") {
            cfg.measureInstructions =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--interval") {
            cfg.obs.intervalInstructions =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--json") {
            cfg.obs.statsJsonPath = next();
        } else if (arg == "--csv") {
            cfg.obs.timelineCsvPath = next();
        } else if (arg == "--trace") {
            trace_file = next();
        } else if (arg == "--record") {
            record_out = next();
        } else if (arg == "--intervals") {
            cfg.trace.intervalInstructions =
                std::strtoull(next(), nullptr, 10);
        } else if (arg == "--select") {
            cfg.trace.selectClusters = static_cast<unsigned>(
                std::strtoul(next(), nullptr, 10));
        } else if (arg == "--events") {
            cfg.obs.traceJsonlPath = next();
        } else if (arg == "--spans") {
            spans_file = next();
        } else if (arg == "--spans-out") {
            spans_out = next();
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--list-benchmarks") {
            for (const auto &b : allSpecBenchmarks())
                std::cout << b << "\n";
            return 0;
        } else if (arg == "--list-policies") {
            for (const auto kind : allPolicyKinds())
                std::cout << policyName(kind) << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage(argv[0]);
            return 0;
        } else {
            std::cerr << "error: unknown option " << arg << "\n";
            return usage(argv[0]);
        }
    }

    if (!manifest_info.empty())
        return summarizeManifest(manifest_info);
    if (!spans_file.empty())
        return summarizeSpans(spans_file);
    if (!spans_out.empty())
        obs::SpanTracer::global().setEnabled(true);

    if (!record_out.empty()) {
        if (!trace_file.empty()) {
            std::cerr << "error: --record and --trace are mutually "
                         "exclusive\n";
            return 2;
        }
        const auto resolved = resolveBenchmark(benchmark);
        if (!resolved) {
            std::cerr << "error: unknown benchmark '" << benchmark
                      << "' (--record takes a single benchmark)\n";
            return 2;
        }
        // Slack beyond warmup+measure: the system's batched decode
        // reads a little past the measured budget, and replay must
        // never wrap mid-run for the round trip to be bit-identical.
        const std::uint64_t budget = cfg.warmupInstructions +
            cfg.measureInstructions +
            cfg.measureInstructions / 100 + 4096;
        SyntheticWorkload gen(specProfile(*resolved));
        const std::uint64_t written =
            recordChampSimTrace(gen, budget, record_out);
        std::cout << "[recorded " << written << " instructions of "
                  << *resolved << " to " << record_out << "]\n";
        return 0;
    }

    if (cfg.trace.selectionEnabled() && trace_file.empty()) {
        std::cerr << "error: --intervals/--select need --trace\n";
        return 2;
    }
    if ((cfg.trace.intervalInstructions > 0) !=
        (cfg.trace.selectClusters > 0)) {
        std::cerr << "error: --intervals and --select go together\n";
        return 2;
    }

    std::vector<std::string> benchmarks;
    if (!trace_file.empty()) {
        // detectTraceKind is also the early validity check: corrupt
        // or missing traces exit nonzero with one line on stderr.
        cfg.trace.kind = detectTraceKind(trace_file);
        cfg.trace.path = trace_file;
        const auto slash = trace_file.find_last_of('/');
        benchmarks.push_back(slash == std::string::npos
                                 ? trace_file
                                 : trace_file.substr(slash + 1));
    } else
        for (const auto &name : splitList(benchmark)) {
            const auto resolved = resolveBenchmark(name);
            if (!resolved) {
                std::cerr << "error: unknown benchmark '" << name
                          << "'; valid benchmarks are:\n";
                for (const auto &b : allSpecBenchmarks())
                    std::cerr << "  " << b << "\n";
                return 2;
            }
            benchmarks.push_back(*resolved);
        }
    std::vector<PolicyKind> kinds;
    for (const auto &name : splitList(policy_name)) {
        const auto kind = parsePolicyKind(name);
        if (!kind) {
            std::cerr << "error: unknown policy '" << name
                      << "'; valid policies are:\n";
            for (const auto k : allPolicyKinds())
                std::cerr << "  " << policyName(k) << "\n";
            return 2;
        }
        kinds.push_back(*kind);
    }
    if (benchmarks.empty() || kinds.empty()) {
        std::cerr << "error: empty benchmark or policy list\n";
        return 2;
    }

    if (opts.resume && opts.manifestPath.empty()) {
        std::cerr << "error: --resume requires --manifest\n";
        return 2;
    }
    if (opts.workers > 0 && opts.manifestPath.empty()) {
        std::cerr << "error: --workers requires --manifest (the "
                     "manifest is the coordination substrate)\n";
        return 2;
    }

    const unsigned jobs =
        opts.jobs ? opts.jobs : sweep::defaultJobs();
    const std::size_t cells = benchmarks.size() * kinds.size();
    if (cells == 1)
        std::cout << "Running " << benchmarks[0] << " under "
                  << policyName(kinds[0]) << " ("
                  << cfg.warmupInstructions << " warmup + "
                  << cfg.measureInstructions
                  << " measured instructions)...\n\n";
    else if (opts.workers > 0)
        std::cout << "Sweeping " << benchmarks.size()
                  << " benchmark(s) x " << kinds.size()
                  << " policy(ies) across " << opts.workers
                  << " crash-isolated worker process(es) ("
                  << cfg.warmupInstructions << " warmup + "
                  << cfg.measureInstructions
                  << " measured instructions per run)...\n\n";
    else
        std::cout << "Sweeping " << benchmarks.size()
                  << " benchmark(s) x " << kinds.size()
                  << " policy(ies) across " << jobs << " worker(s) ("
                  << cfg.warmupInstructions << " warmup + "
                  << cfg.measureInstructions
                  << " measured instructions per run)...\n\n";

    sweep::installShutdownHandler();
    const sweep::Grid grid =
        sweep::runGrid(benchmarks, kinds, cfg, opts);

    for (const auto &err : grid.errors) {
        std::cerr << "FAILED cell " << err.run << "/" << err.policy
                  << " after " << err.attempts << " attempt(s)"
                  << (err.timedOut ? " [timeout]" : "");
        if (err.crashed)
            std::cerr << " [crashed, signal " << err.signal << "]";
        std::cerr << ": " << err.message << "\n";
    }
    if (grid.skipped > 0)
        std::cerr << "interrupted: " << grid.skipped
                  << " cell(s) skipped\n";
    if (grid.resumed > 0)
        std::cerr << "[resumed " << grid.resumed
                  << " cell(s) from " << opts.manifestPath << "]\n";

    // Span export (SDBP_SPANS=1 or --spans-out) goes to stderr-land:
    // the file plus a notice, never a stdout line.
    const obs::SpanTracer &tracer = obs::SpanTracer::global();
    if (tracer.enabled() && tracer.recorded() > 0) {
        const std::string path =
            spans_out.empty() ? "sdbp_inspect.spans.json" : spans_out;
        if (tracer.writeChromeTrace(path))
            std::cerr << "[wrote " << path << " (" << tracer.size()
                      << " spans, " << tracer.dropped()
                      << " dropped)]\n";
        else
            std::cerr << "cannot write " << path << "\n";
    }

    if (cells == 1) {
        if (!grid.ok())
            return grid.skipped > 0 ? 130 : 1;
        const RunResult &res = grid.at(0, 0);
        if (res.intervalSelected) {
            // Interval selection runs without per-rep artifacts;
            // print the weighted full-trace estimates instead.
            TextTable t({"Metric", "Value"});
            t.row().cell("trace").cell(res.benchmark);
            t.row().cell("policy").cell(res.policy);
            t.row().cell("trace instructions").cell(
                std::to_string(res.traceInstructions));
            t.row().cell("intervals (simulated/total)").cell(
                std::to_string(res.intervalsSimulated) + "/" +
                std::to_string(res.intervalsTotal));
            t.row().cell("instructions simulated").cell(
                std::to_string(res.simulatedInstructions));
            t.row().cell("instruction reduction").cell(
                formatDouble(res.simulatedInstructions > 0
                                 ? static_cast<double>(
                                       res.traceInstructions) /
                                     static_cast<double>(
                                         res.simulatedInstructions)
                                 : 0, 1) + "x");
            t.row().cell("estimated IPC").cell(
                formatDouble(res.ipc, 3));
            t.row().cell("estimated LLC MPKI").cell(
                formatDouble(res.mpki, 3));
            t.print(std::cout);
            return 0;
        }
        if (!res.artifacts && grid.resumed > 0) {
            // Manifest checkpoints carry metrics, not artifacts.
            std::cout << res.benchmark << " under " << res.policy
                      << ": IPC " << formatDouble(res.ipc, 3)
                      << ", MPKI " << formatDouble(res.mpki, 3)
                      << " (restored from manifest; re-run without "
                         "--resume for full artifacts)\n";
            return 0;
        }
        if (!res.artifacts) {
            std::cerr << "error: run produced no artifacts\n";
            return 1;
        }
        printSummary(*res.artifacts);

        if (dump_stats) {
            std::cout << "\nFinal stats:\n";
            for (const auto &s :
                 res.artifacts->finalSnapshot.samples)
                std::cout << "  " << s.name << " = "
                          << (s.kind == obs::StatKind::Counter
                                  ? std::to_string(s.counter)
                                  : formatDouble(s.value, 6))
                          << "\n";
        }

        if (!cfg.obs.statsJsonPath.empty())
            std::cout << "\n[wrote " << cfg.obs.statsJsonPath
                      << "]\n";
        if (!cfg.obs.timelineCsvPath.empty())
            std::cout << "[wrote " << cfg.obs.timelineCsvPath
                      << "]\n";
        if (!cfg.obs.traceJsonlPath.empty())
            std::cout << "[wrote " << cfg.obs.traceJsonlPath
                      << "]\n";
        return 0;
    }

    // Multi-cell sweep: one summary row per cell, in grid order.
    TextTable t({"Benchmark", "Policy", "IPC", "MPKI", "Misses",
                 "Bypasses", "Wall s"});
    for (std::size_t b = 0; b < grid.benchmarks.size(); ++b)
        for (std::size_t p = 0; p < grid.policies.size(); ++p) {
            const RunResult &r = grid.at(b, p);
            t.row()
                .cell(grid.benchmarks[b])
                .cell(r.policy)
                .cell(r.ipc, 3)
                .cell(r.mpki, 3)
                .cell(std::to_string(r.llcMisses))
                .cell(std::to_string(r.llcBypasses))
                .cell(r.wallSeconds, 2);
        }
    t.print(std::cout);
    std::cout << "\nSweep of " << cells << " runs took "
              << formatDouble(grid.wallSeconds, 2) << " s with "
              << grid.jobs << " worker(s); serial-equivalent cost "
              << formatDouble(grid.runSecondsTotal(), 2) << " s.\n";
    if (!cfg.obs.statsJsonPath.empty() ||
        !cfg.obs.timelineCsvPath.empty() ||
        !cfg.obs.traceJsonlPath.empty())
        std::cout << "Artifacts were written per cell "
                     "(base path + .<benchmark>.<policy>).\n";
    if (grid.skipped > 0)
        return 130;
    return grid.errors.empty() ? 0 : 1;
}
