"""Shared helpers for the stdlib-only tools in this directory.

Everything in tools/ runs in CI where installing packages is
off-limits, so this module sticks to the standard library: JSON
loading with a uniform error message, google-benchmark parsing shared
by perf_compare.py and the perf harness, small statistics, and a
subprocess wrapper used by the binary audit.
"""

import json
import statistics
import subprocess
import sys


def load_json(path):
    """Load a JSON document, exiting with a one-line error on failure.

    Tools that take result files as arguments all want the same
    behaviour: a missing or malformed file is a usage error, not a
    traceback.
    """
    try:
        with open(path) as f:
            return json.load(f)
    except OSError as e:
        sys.exit(f"error: cannot read {path}: {e.strerror or e}")
    except json.JSONDecodeError as e:
        sys.exit(f"error: {path} is not valid JSON: {e}")


def load_benchmarks(path):
    """Map benchmark name -> entry, preferring the median aggregate.

    Reads the ``benchmarks`` array of a google-benchmark
    --benchmark_out file.  With --benchmark_repetitions the file holds
    one row per repetition (all sharing the plain name) plus
    mean/median/stddev aggregates; the median is the noise-robust
    choice, so ``NAME_median`` shadows the raw ``NAME`` rows when
    present.
    """
    doc = load_json(path)
    out = {}
    for entry in doc.get("benchmarks", []):
        name = entry["name"]
        if entry.get("run_type", "iteration") == "aggregate":
            if entry.get("aggregate_name") != "median":
                continue
            name = entry.get("run_name", name.removesuffix("_median"))
        elif name in out:
            continue
        out[name] = entry
    return out


def median(values):
    """Median of a non-empty sequence of numbers."""
    return statistics.median(values)


#: ns per unit for google-benchmark time_unit strings.
TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def ns_per_instr(entry, instructions_per_iter=10000):
    """Host ns per simulated instruction of one benchmark entry.

    ``BM_SimulatedInstruction`` runs 10000 instructions per iteration
    (SetItemsProcessed), so cpu_time / 10000 converted to ns is the
    ROADMAP's headline ns/instr metric.  Shared by bench_history.py
    (recording) and perf_compare.py --ratchet (gating) so the two
    always agree on the derivation.
    """
    scale = TIME_UNIT_NS.get(entry.get("time_unit", "ns"), 1.0)
    return entry["cpu_time"] * scale / instructions_per_iter


def run_process(cmd, **kwargs):
    """Run a command, returning its stdout as text.

    Exits with a one-line error if the command is missing or fails --
    the binary-audit tools treat an unrunnable nm/objdump as a usage
    error, not a Python traceback.
    """
    try:
        proc = subprocess.run(cmd, check=True, capture_output=True,
                              text=True, **kwargs)
    except FileNotFoundError:
        sys.exit(f"error: required tool not found: {cmd[0]}")
    except subprocess.CalledProcessError as e:
        detail = (e.stderr or "").strip().splitlines()
        tail = f": {detail[-1]}" if detail else ""
        sys.exit(f"error: {' '.join(cmd)} failed "
                 f"(exit {e.returncode}){tail}")
    return proc.stdout
